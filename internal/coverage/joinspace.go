package coverage

import (
	"fmt"
	"sort"

	"redi/internal/bitmap"
	"redi/internal/dataset"
	"redi/internal/obs"
)

// JoinSpace answers coverage queries over the equi-join of two relations
// WITHOUT materializing the join (Lin, Guan, Asudeh, Jagadish, VLDB 2020:
// "Identifying insufficient data coverage in databases with multiple
// relations"). A pattern constrains attributes drawn from both sides; its
// join support factorizes per join-key:
//
//	count(p) = Σ_key  countLeft(key, p_left) × countRight(key, p_right)
//
// Each side's rows are laid out grouped by join key, with one bitmap per
// (attribute, value) over that layout, so a side pattern's matching rows
// are an intersection of value bitmaps and each per-key factor is a masked
// popcount over that key's contiguous bit range — no per-row scans. Only
// keys present on both sides are kept; all others contribute zero to every
// count. Counts are pure and lock-free (see Space for why the string-keyed
// memo of earlier revisions was removed).
type JoinSpace struct {
	// Attrs lists the pattern attributes: the left relation's first,
	// then the right's.
	Attrs     []string
	Domains   [][]string
	Threshold int
	// Obs receives the walk's operation counters; see Space.Obs.
	Obs *obs.Registry

	numLeft int
	// keys are the join keys present on both sides, sorted. offL/offR
	// give each key's contiguous row range in the per-side flat layout:
	// key k's left rows occupy bits [offL[k], offL[k+1]).
	keys []string
	offL []int
	offR []int
	// Per-side flat codes (the countScan oracle's input) and per-(attr,
	// value) bitmaps over the flat layout. Attribute indices are local
	// to the side (left attr i = pattern position i; right attr i =
	// pattern position numLeft+i).
	leftCols  [][]int32
	rightCols [][]int32
	leftBits  [][]bitmap.Bitmap
	rightBits [][]bitmap.Bitmap

	totalJoin int
	poolL     *bitmap.Pool
	poolR     *bitmap.Pool
}

// NewJoinSpace prepares coverage over left ⋈ right on the given join keys,
// with pattern attributes leftAttrs from the left relation and rightAttrs
// from the right. It panics if no pattern attributes are given or an
// attribute is not categorical.
func NewJoinSpace(left *dataset.Dataset, leftKey string, leftAttrs []string,
	right *dataset.Dataset, rightKey string, rightAttrs []string, threshold int) *JoinSpace {
	if len(leftAttrs)+len(rightAttrs) == 0 {
		panic("coverage: NewJoinSpace requires at least one pattern attribute")
	}
	js := &JoinSpace{
		Threshold: threshold,
		numLeft:   len(leftAttrs),
	}
	collect := func(d *dataset.Dataset, key string, attrs []string) (cols [][]int32, rowsByKey map[string][]int) {
		keys := d.Strings(key)
		cols = make([][]int32, len(attrs))
		for i, a := range attrs {
			codes, dict := d.Codes(a)
			cols[i] = codes
			js.Domains = append(js.Domains, dict)
			js.Attrs = append(js.Attrs, a)
		}
		rowsByKey = map[string][]int{}
		for r := 0; r < d.NumRows(); r++ {
			if keys[r] == "" {
				continue
			}
			rowsByKey[keys[r]] = append(rowsByKey[keys[r]], r)
		}
		return cols, rowsByKey
	}
	lCols, lByKey := collect(left, leftKey, leftAttrs)
	rCols, rByKey := collect(right, rightKey, rightAttrs)

	for k := range lByKey {
		if _, ok := rByKey[k]; ok {
			js.keys = append(js.keys, k) //redi:allow maporder collected keys are sorted immediately below
		}
	}
	sort.Strings(js.keys)

	// Flatten each side grouped by key and build the value bitmaps.
	// domOff maps the side's local attribute index to its position in
	// js.Domains (0 for left, numLeft for right); bitmaps cover the full
	// dictionary, even values absent from the joined rows.
	flatten := func(byKey map[string][]int, cols [][]int32, nAttrs, domOff int) (off []int, flat [][]int32, bits [][]bitmap.Bitmap) {
		off = make([]int, len(js.keys)+1)
		n := 0
		for ki, k := range js.keys {
			off[ki] = n
			n += len(byKey[k])
		}
		off[len(js.keys)] = n
		flat = make([][]int32, nAttrs)
		bits = make([][]bitmap.Bitmap, nAttrs)
		for a := 0; a < nAttrs; a++ {
			flat[a] = make([]int32, n)
		}
		at := 0
		for _, k := range js.keys {
			for _, r := range byKey[k] {
				for a := 0; a < nAttrs; a++ {
					flat[a][at] = cols[a][r]
				}
				at++
			}
		}
		for a := 0; a < nAttrs; a++ {
			bits[a] = make([]bitmap.Bitmap, len(js.Domains[domOff+a]))
			for v := range bits[a] {
				bits[a][v] = bitmap.New(n)
			}
			for i, c := range flat[a] {
				if c >= 0 {
					bits[a][c].Set(i)
				}
			}
		}
		return off, flat, bits
	}
	js.offL, js.leftCols, js.leftBits = flatten(lByKey, lCols, len(leftAttrs), 0)
	js.offR, js.rightCols, js.rightBits = flatten(rByKey, rCols, len(rightAttrs), js.numLeft)
	js.poolL = bitmap.NewPool(js.offL[len(js.keys)])
	js.poolR = bitmap.NewPool(js.offR[len(js.keys)])
	js.totalJoin = js.factorCount(nil, nil)
	return js
}

// Root returns the all-wildcard pattern.
func (js *JoinSpace) Root() Pattern {
	p := make(Pattern, len(js.Attrs))
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// split separates a pattern into its left and right halves.
func (js *JoinSpace) split(p Pattern) (Pattern, Pattern) {
	return Pattern(p[:js.numLeft]), Pattern(p[js.numLeft:])
}

// factorCount evaluates the per-key factorization for the given side row
// sets. A nil bitmap means the side is unconstrained (every row of every
// key matches).
func (js *JoinSpace) factorCount(left, right bitmap.Bitmap) int {
	total := 0
	for k := range js.keys {
		var nl int
		if left == nil {
			nl = js.offL[k+1] - js.offL[k]
		} else {
			nl = left.CountRange(js.offL[k], js.offL[k+1])
		}
		if nl == 0 {
			continue
		}
		var nr int
		if right == nil {
			nr = js.offR[k+1] - js.offR[k]
		} else {
			nr = right.CountRange(js.offR[k], js.offR[k+1])
		}
		total += nl * nr
	}
	return total
}

// sideSet intersects the constrained positions of one side's half-pattern
// into a row set. It returns nil (all rows) for an unconstrained half, a
// borrowed precomputed bitmap for a single constraint, or pooled scratch
// (owned=true) for deeper intersections.
func sideSet(half Pattern, bits [][]bitmap.Bitmap, pool *bitmap.Pool) (set bitmap.Bitmap, owned bool) {
	for i, v := range half {
		if v == Wildcard {
			continue
		}
		vb := bits[i][v]
		switch {
		case set == nil:
			set = vb
		case !owned:
			dst := pool.Get()
			bitmap.And(dst, set, vb)
			//redi:allow poolcheck scratch leaves via the named result; JoinSpace.Count Puts it back under the lOwned/rOwned flags
			set, owned = dst, true
		default:
			bitmap.And(set, set, vb)
		}
	}
	return set, owned
}

// Count returns the number of join results matching p: each side's
// constraints intersect into a row set, and the factorized sum multiplies
// the per-key masked popcounts. Pure and safe for concurrent use.
func (js *JoinSpace) Count(p Pattern) int {
	pl, pr := js.split(p)
	ls, lOwned := sideSet(pl, js.leftBits, js.poolL)
	rs, rOwned := sideSet(pr, js.rightBits, js.poolR)
	total := js.factorCount(ls, rs)
	if lOwned {
		js.poolL.Put(ls)
	}
	if rOwned {
		js.poolR.Put(rs)
	}
	return total
}

// countScan counts the join results matching p by scanning every row of
// both sides per key — the pre-bitmap implementation, kept as the
// unexported test oracle for the property tests.
func (js *JoinSpace) countScan(p Pattern) int {
	pl, pr := js.split(p)
	matches := func(half Pattern, cols [][]int32, row int) bool {
		for i, v := range half {
			if v != Wildcard && int(cols[i][row]) != v {
				return false
			}
		}
		return true
	}
	total := 0
	for k := range js.keys {
		nl := 0
		for r := js.offL[k]; r < js.offL[k+1]; r++ {
			if matches(pl, js.leftCols, r) {
				nl++
			}
		}
		if nl == 0 {
			continue
		}
		nr := 0
		for r := js.offR[k]; r < js.offR[k+1]; r++ {
			if matches(pr, js.rightCols, r) {
				nr++
			}
		}
		total += nl * nr
	}
	return total
}

// Covered reports whether p meets the threshold.
func (js *JoinSpace) Covered(p Pattern) bool { return js.Count(p) >= js.Threshold }

// Parents returns the immediate generalizations of p.
func (js *JoinSpace) Parents(p Pattern) []Pattern {
	var out []Pattern
	for i, v := range p {
		if v != Wildcard {
			q := p.Clone()
			q[i] = Wildcard
			out = append(out, q)
		}
	}
	return out
}

// Children returns p's canonical children (see Space.Children).
func (js *JoinSpace) Children(p Pattern) []Pattern {
	start := 0
	for i, v := range p {
		if v != Wildcard {
			start = i + 1
		}
	}
	var out []Pattern
	for i := start; i < len(p); i++ {
		for v := range js.Domains[i] {
			q := p.Clone()
			q[i] = v
			out = append(out, q)
		}
	}
	return out
}

// threshold, numValues, rootSet, childSet, and releaseSet implement the
// threaded-walk hooks (see mups.go). A child specializes exactly one
// position, so only that side's row set is refined — the other side's
// bitmap and per-key factors are reused from the parent.

func (js *JoinSpace) threshold() int      { return js.Threshold }
func (js *JoinSpace) numValues(i int) int { return len(js.Domains[i]) }

func (js *JoinSpace) rootSet() rowSet {
	return rowSet{count: js.totalJoin} // nil bitmaps = all rows on both sides
}

func (js *JoinSpace) childSet(parent rowSet, pos, val int, st *walkStats) rowSet {
	child := rowSet{a: parent.a, b: parent.b} // borrowed: parent still owns its sets
	if pos < js.numLeft {
		vb := js.leftBits[pos][val]
		if parent.a == nil {
			child.a = vb
		} else {
			st.ands++
			dst := js.poolL.Get()
			bitmap.And(dst, parent.a, vb)
			child.a, child.ownedA = dst, true
		}
	} else {
		vb := js.rightBits[pos-js.numLeft][val]
		if parent.b == nil {
			child.b = vb
		} else {
			st.ands++
			dst := js.poolR.Get()
			bitmap.And(dst, parent.b, vb)
			child.b, child.ownedB = dst, true
		}
	}
	child.count = js.factorCount(child.a, child.b)
	//redi:allow poolcheck both side sets transfer to the DFS caller; JoinSpace.releaseSet Puts them under the ownedA/ownedB flags
	return child
}

func (js *JoinSpace) observer() *obs.Registry { return obs.Active(js.Obs) }

func (js *JoinSpace) releaseSet(rs rowSet) {
	if rs.ownedA {
		js.poolL.Put(rs.a)
	}
	if rs.ownedB {
		js.poolR.Put(rs.b)
	}
}

// MUPs enumerates the maximal uncovered patterns of the join.
func (js *JoinSpace) MUPs() []MUP { return patternBreaker(js) }

// MUPsParallel enumerates the same MUPs as MUPs with the search sharded
// across workers; the result is bit-identical at any worker count.
func (js *JoinSpace) MUPsParallel(workers int) []MUP { return patternBreakerWorkers(js, workers) }

// Describe renders p with attribute names.
func (js *JoinSpace) Describe(p Pattern) string {
	s := ""
	for i, v := range p {
		if i > 0 {
			s += ", "
		}
		s += js.Attrs[i] + "="
		if v == Wildcard {
			s += "*"
		} else {
			s += js.Domains[i][v]
		}
	}
	return s
}

// Check that JoinSpace satisfies the walker interface.
var _ patternSpace = (*JoinSpace)(nil)

// String summarizes the space.
func (js *JoinSpace) String() string {
	return fmt.Sprintf("JoinSpace(%d attrs, threshold %d)", len(js.Attrs), js.Threshold)
}
