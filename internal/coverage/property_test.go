package coverage

import (
	"testing"
	"testing/quick"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// randomTable builds a small 3-attribute categorical table from raw bytes.
func randomTable(cells []byte) *dataset.Dataset {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Categorical},
		dataset.Attribute{Name: "b", Kind: dataset.Categorical},
		dataset.Attribute{Name: "c", Kind: dataset.Categorical},
	))
	vals := []string{"x", "y", "z"}
	for i := 0; i+2 < len(cells); i += 3 {
		d.MustAppendRow(
			dataset.Cat(vals[int(cells[i])%3]),
			dataset.Cat(vals[int(cells[i+1])%3]),
			dataset.Cat(vals[int(cells[i+2])%3]),
		)
	}
	return d
}

// Property: every reported MUP is uncovered, all of its parents are
// covered, and no reported MUP dominates another.
func TestMUPInvariantsProperty(t *testing.T) {
	f := func(cells []byte, tau8 uint8) bool {
		d := randomTable(cells)
		if d.NumRows() == 0 {
			return true
		}
		tau := int(tau8%20) + 1
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		mups := s.MUPs()
		for i, m := range mups {
			if s.Covered(m.Pattern) {
				return false
			}
			if !allParentsCovered(s, m.Pattern, &walkStats{}) {
				return false
			}
			for j, o := range mups {
				if i != j && m.Pattern.Dominates(o.Pattern) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: pattern-breaker and the naive lattice scan agree on arbitrary
// small tables.
func TestMUPAgreementProperty(t *testing.T) {
	f := func(cells []byte, tau8 uint8) bool {
		d := randomTable(cells)
		if d.NumRows() == 0 {
			return true
		}
		tau := int(tau8%15) + 1
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		fast := s.MUPs()
		slow := s.NaiveMUPs()
		if len(fast) != len(slow) {
			return false
		}
		seen := map[string]bool{}
		for _, m := range fast {
			seen[s.Describe(m.Pattern)] = true
		}
		for _, m := range slow {
			if !seen[s.Describe(m.Pattern)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bitmap intersection counter agrees with the old naive
// row-scan counter (kept as the unexported oracle countScan) on every
// pattern of the lattice of a random space.
func TestBitmapCountMatchesScanProperty(t *testing.T) {
	f := func(cells []byte, tau8 uint8) bool {
		d := randomTable(cells)
		if d.NumRows() == 0 {
			return true
		}
		tau := int(tau8%20) + 1
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		ok := true
		var all func(p Pattern, from int)
		all = func(p Pattern, from int) {
			if s.Count(p) != s.countScan(p) {
				ok = false
				return
			}
			for i := from; i < len(p) && ok; i++ {
				for v := range s.Domains[i] {
					p[i] = v
					all(p, i+1)
					p[i] = Wildcard
				}
			}
		}
		all(s.Root(), 0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// scanMUPs enumerates MUPs using only the row-scan oracle — the fully
// pre-bitmap algorithm, reconstructed for cross-checking.
func scanMUPs(s *Space) []MUP {
	scanCovered := func(p Pattern) bool { return s.countScan(p) >= s.Threshold }
	var out []MUP
	var all func(p Pattern, from int)
	all = func(p Pattern, from int) {
		if !scanCovered(p) {
			allCov := true
			for _, parent := range s.Parents(p) {
				if !scanCovered(parent) {
					allCov = false
					break
				}
			}
			if allCov {
				out = append(out, MUP{Pattern: p.Clone(), Count: s.countScan(p)})
			}
		}
		for i := from; i < len(p); i++ {
			for v := range s.Domains[i] {
				p[i] = v
				all(p, i+1)
				p[i] = Wildcard
			}
		}
	}
	all(s.Root(), 0)
	return out
}

// Property: the bitmap-threaded pattern-breaker reports the bit-identical
// MUP set (patterns AND counts) the row-scan oracle derives.
func TestMUPsMatchScanOracleProperty(t *testing.T) {
	f := func(cells []byte, tau8 uint8) bool {
		d := randomTable(cells)
		if d.NumRows() == 0 {
			return true
		}
		tau := int(tau8%15) + 1
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		fast := s.MUPs()
		slow := scanMUPs(s)
		if len(fast) != len(slow) {
			return false
		}
		seen := map[string]int{}
		for _, m := range fast {
			seen[s.Describe(m.Pattern)] = m.Count
		}
		for _, m := range slow {
			c, ok := seen[s.Describe(m.Pattern)]
			if !ok || c != m.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the factorized bitmap join counter agrees with the per-key
// row-scan oracle on every pattern of a random join space.
func TestJoinSpaceCountMatchesScanProperty(t *testing.T) {
	f := func(leftCells, rightCells []byte, tau8 uint8) bool {
		left := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "k", Kind: dataset.Categorical},
			dataset.Attribute{Name: "a", Kind: dataset.Categorical},
		))
		right := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "k", Kind: dataset.Categorical},
			dataset.Attribute{Name: "b", Kind: dataset.Categorical},
		))
		vals := []string{"x", "y", "z"}
		keys := []string{"k0", "k1", "k2", "k3"}
		for i := 0; i+1 < len(leftCells); i += 2 {
			left.MustAppendRow(
				dataset.Cat(keys[int(leftCells[i])%len(keys)]),
				dataset.Cat(vals[int(leftCells[i+1])%3]))
		}
		for i := 0; i+1 < len(rightCells); i += 2 {
			right.MustAppendRow(
				dataset.Cat(keys[int(rightCells[i])%len(keys)]),
				dataset.Cat(vals[int(rightCells[i+1])%3]))
		}
		if left.NumRows() == 0 || right.NumRows() == 0 {
			return true
		}
		tau := int(tau8%10) + 1
		js := NewJoinSpace(left, "k", []string{"a"}, right, "k", []string{"b"}, tau)
		ok := true
		var all func(p Pattern, from int)
		all = func(p Pattern, from int) {
			if js.Count(p) != js.countScan(p) {
				ok = false
				return
			}
			for i := from; i < len(p) && ok; i++ {
				for v := range js.Domains[i] {
					p[i] = v
					all(p, i+1)
					p[i] = Wildcard
				}
			}
		}
		all(js.Root(), 0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a remedy plan always covers every MUP it was built for.
func TestRemedyCoversProperty(t *testing.T) {
	f := func(cells []byte, tau8 uint8) bool {
		d := randomTable(cells)
		if d.NumRows() == 0 {
			return true
		}
		tau := int(tau8%10) + 1
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		mups := s.MUPs()
		plan := s.Remedy(mups)
		for _, m := range mups {
			got := m.Count
			for _, st := range plan {
				if m.Pattern.Dominates(st.Combination) {
					got += st.Count
				}
			}
			if got < tau {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ordinal coverage counts never exceed the number of indexed
// points and shrink (weakly) as the radius shrinks.
func TestOrdinalMonotoneProperty(t *testing.T) {
	p := rng.New(99)
	f := func(n8 uint8) bool {
		n := int(n8%40) + 5
		d := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		))
		for i := 0; i < n; i++ {
			d.MustAppendRow(dataset.Num(p.Normal(0, 1)))
		}
		big := NewOrdinalCoverage(d, []string{"x"}, 2.0, 1)
		small := NewOrdinalCoverage(d, []string{"x"}, 0.5, 1)
		q := []float64{p.Normal(0, 1)}
		cb, cs := big.NeighborCount(q), small.NeighborCount(q)
		return cs <= cb && cb <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
