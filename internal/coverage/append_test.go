package coverage

import (
	"fmt"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

func appendTestSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Categorical},
		dataset.Attribute{Name: "b", Kind: dataset.Categorical},
		dataset.Attribute{Name: "c", Kind: dataset.Categorical},
	)
}

// appendRandRow draws from small pools plus a long tail so appends both hit
// existing (attr, value) bitmaps and mint new domain values mid-stream, with
// occasional nulls (which belong to no bitmap).
func appendRandRow(r *rng.RNG, d *dataset.Dataset) {
	cell := func() dataset.Value {
		switch r.Intn(12) {
		case 0:
			return dataset.NullValue(dataset.Categorical)
		case 1:
			return dataset.Cat(fmt.Sprintf("v%d", r.Intn(30)))
		default:
			return dataset.Cat([]string{"x", "y", "z"}[r.Intn(3)])
		}
	}
	d.MustAppendRow(cell(), cell(), cell())
}

// requireSpaceEqual asserts the incremental space is bit-identical to a cold
// rebuild: domains, value counts, and every bitmap word.
func requireSpaceEqual(t *testing.T, inc, cold *Space) {
	t.Helper()
	if inc.numRows != cold.numRows {
		t.Fatalf("numRows %d vs %d", inc.numRows, cold.numRows)
	}
	for i := range cold.Attrs {
		if len(inc.Domains[i]) != len(cold.Domains[i]) {
			t.Fatalf("attr %d: domain len %d vs %d", i, len(inc.Domains[i]), len(cold.Domains[i]))
		}
		for v := range cold.Domains[i] {
			if inc.Domains[i][v] != cold.Domains[i][v] {
				t.Fatalf("attr %d: domain[%d] = %q vs %q", i, v, inc.Domains[i][v], cold.Domains[i][v])
			}
			if inc.valCounts[i][v] != cold.valCounts[i][v] {
				t.Fatalf("attr %d val %d: count %d vs %d", i, v, inc.valCounts[i][v], cold.valCounts[i][v])
			}
			ib, cb := inc.bits[i][v], cold.bits[i][v]
			if len(ib) != len(cb) {
				t.Fatalf("attr %d val %d: %d words vs %d", i, v, len(ib), len(cb))
			}
			for w := range cb {
				if ib[w] != cb[w] {
					t.Fatalf("attr %d val %d word %d: %#x vs %#x", i, v, w, ib[w], cb[w])
				}
			}
		}
		for r := range cold.cols[i] {
			if inc.cols[i][r] != cold.cols[i][r] {
				t.Fatalf("attr %d row %d: oracle code %d vs %d", i, r, inc.cols[i][r], cold.cols[i][r])
			}
		}
	}
}

// TestAppendRowsEquivalence drives random append schedules and pins the hard
// contract: the incrementally maintained space matches a cold NewSpace
// bit-for-bit, and MUP enumeration over it is identical at workers 1, 2,
// and 8.
func TestAppendRowsEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		r := rng.New(seed)
		d := dataset.New(appendTestSchema())
		n0 := 10 + r.Intn(60)
		for i := 0; i < n0; i++ {
			appendRandRow(r, d)
		}
		tau := 1 + r.Intn(6)
		s := NewSpace(d, []string{"a", "b", "c"}, tau)
		rows := n0
		for batch := 0; batch < 10; batch++ {
			k := 1 + r.Intn(80) // crosses word boundaries regularly
			for i := 0; i < k; i++ {
				appendRandRow(r, d)
			}
			s.AppendRows(d, rows)
			rows += k

			cold := NewSpace(d, []string{"a", "b", "c"}, tau)
			requireSpaceEqual(t, s, cold)

			want := describeAll(cold, cold.MUPs())
			for _, workers := range []int{1, 2, 8} {
				got := describeAll(s, s.MUPsParallel(workers))
				if len(got) != len(want) {
					t.Fatalf("seed %d batch %d workers %d: %d MUPs, rebuild has %d", seed, batch, workers, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("seed %d batch %d workers %d: MUP[%d] = %q, rebuild has %q", seed, batch, workers, j, got[j], want[j])
					}
				}
			}
		}
	}
}

func describeAll(s *Space, mups []MUP) []string {
	out := make([]string, len(mups))
	for i, m := range mups {
		out[i] = s.Describe(m.Pattern)
	}
	return out
}

// TestAppendRowsFromRowMismatch pins the guard against skipped or repeated
// batches.
func TestAppendRowsFromRowMismatch(t *testing.T) {
	d := dataset.New(appendTestSchema())
	d.MustAppendRow(dataset.Cat("x"), dataset.Cat("y"), dataset.Cat("z"))
	s := NewSpace(d, []string{"a", "b", "c"}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRows with wrong fromRow did not panic")
		}
	}()
	s.AppendRows(d, 0)
}
