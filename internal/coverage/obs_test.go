package coverage

import (
	"bytes"
	"testing"

	"redi/internal/obs"
)

// captureWalk runs one pattern-space walk against a fresh site registry and
// returns the canonical snapshot bytes.
func captureWalk(t *testing.T, run func(reg *obs.Registry)) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	run(reg)
	b, err := reg.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMUPsObsWorkerInvariance pins the layer-local half of the obs
// determinism contract: per-shard walk tallies (DFS nodes, bitmap ANDs,
// parent checks, per-level MUPs) merge in shard order to totals that are
// bit-identical to the serial walk at any worker count.
func TestMUPsObsWorkerInvariance(t *testing.T) {
	data := skewedTable(t, 5, 3000, 5)
	attrs := data.Schema().Names()
	serial := captureWalk(t, func(reg *obs.Registry) {
		s := NewSpace(data, attrs, 25)
		s.Obs = reg
		s.MUPs()
	})
	if !bytes.Contains(serial, []byte(`"coverage.dfs_nodes"`)) ||
		!bytes.Contains(serial, []byte(`"coverage.bitmap_ands"`)) ||
		!bytes.Contains(serial, []byte(`"coverage.mups"`)) {
		t.Fatalf("serial walk snapshot missing coverage counters:\n%s", serial)
	}
	for _, w := range []int{1, 2, 8} {
		got := captureWalk(t, func(reg *obs.Registry) {
			s := NewSpace(data, attrs, 25)
			s.Obs = reg
			s.MUPsParallel(w)
		})
		if !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: walk counters diverged from serial\nserial: %s\ngot:    %s", w, serial, got)
		}
	}
}

// TestJoinSpaceObsWorkerInvariance covers the factorized join space, whose
// childSet owns two And branches, with the same snapshot-equality check.
func TestJoinSpaceObsWorkerInvariance(t *testing.T) {
	left, right := joinFixture(t, 3, 800)
	serial := captureWalk(t, func(reg *obs.Registry) {
		js := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 15)
		js.Obs = reg
		js.MUPs()
	})
	if !bytes.Contains(serial, []byte(`"coverage.dfs_nodes"`)) {
		t.Fatalf("join-space snapshot missing coverage counters:\n%s", serial)
	}
	for _, w := range []int{1, 8} {
		got := captureWalk(t, func(reg *obs.Registry) {
			js := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 15)
			js.Obs = reg
			js.MUPsParallel(w)
		})
		if !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: join-space walk counters diverged\nserial: %s\ngot:    %s", w, serial, got)
		}
	}
}
