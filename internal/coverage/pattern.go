// Package coverage implements group-representation analysis for datasets:
// maximal uncovered pattern (MUP) enumeration over categorical attributes
// (Asudeh, Jin, Jagadish, ICDE 2019), greedy coverage remedies, and
// neighborhood-based coverage for ordinal/continuous attributes (Asudeh et
// al., SIGMOD 2021).
//
// A pattern fixes a value for some subset of the attributes of interest and
// wildcards the rest; it is covered when at least Threshold rows match. The
// uncovered region of a dataset is summarized by its MUPs: uncovered
// patterns all of whose generalizations are covered.
package coverage

import (
	"fmt"
	"strings"

	"redi/internal/bitmap"
	"redi/internal/dataset"
	"redi/internal/obs"
)

// Wildcard marks an unconstrained position in a pattern.
const Wildcard = -1

// Pattern constrains a subset of attributes: entry i is either Wildcard or
// an index into the i-th attribute's domain.
type Pattern []int

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern {
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Level returns the number of non-wildcard positions.
func (p Pattern) Level() int {
	n := 0
	for _, v := range p {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// Matches reports whether the coded row matches the pattern. Codes of -1
// (null) match nothing but a wildcard.
func (p Pattern) Matches(codes []int) bool {
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		if codes[i] != v {
			return false
		}
	}
	return true
}

// Dominates reports whether p is a generalization of q (every constraint of
// p appears in q). Every pattern dominates itself.
func (p Pattern) Dominates(q Pattern) bool {
	for i, v := range p {
		if v != Wildcard && q[i] != v {
			return false
		}
	}
	return true
}

// key renders the pattern as a compact map key.
func (p Pattern) key() string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		if v == Wildcard {
			sb.WriteByte('X')
		} else {
			fmt.Fprintf(&sb, "%d", v)
		}
	}
	return sb.String()
}

// Space is the pattern search space over a dataset's attributes of
// interest: per-(attribute, value) row bitmaps, the attribute domains, and
// the coverage threshold.
//
// Counting is bitmap-based: NewSpace precomputes one bitmap per
// (attribute, value) holding the rows carrying that value, so Count is an
// intersection + popcount over machine words rather than a row scan.
//
// Earlier revisions memoized Count behind a string-keyed map + mutex; with
// bitmap counts the memo was REMOVED rather than made single-flight. A
// memoized lookup cost a pattern-key render, a map probe, and a lock
// hand-off — more than the handful of word-AND/popcount loops a recount
// costs — and deleting it also closes the duplicated-work race window the
// old design tolerated (two workers could scan the same pattern
// concurrently because the scan ran outside the lock). Count is now pure
// and lock-free, so concurrent callers never contend or duplicate
// meaningful work.
type Space struct {
	Attrs     []string
	Domains   [][]string // Domains[i] lists attribute i's values
	Threshold int
	// Obs receives the walk's operation counters (DFS nodes, bitmap ANDs,
	// MUPs per level). Nil falls back to the process-wide registry
	// (obs.Enable). Counters are tallied per shard and merged in shard
	// order, so they are bit-identical at any worker count.
	Obs *obs.Registry

	numRows int
	cols    [][]int32 // per-attribute codes (-1 null); the countScan oracle's input
	// bits[i][v] marks the rows where attribute i has value v. Null
	// codes appear in no bitmap, so they match only wildcards.
	bits      [][]bitmap.Bitmap
	valCounts [][]int // popcounts of bits[i][v]
	pool      *bitmap.Pool
}

// NewSpace prepares a pattern space over the given categorical attributes of
// d. Threshold is the minimum count for a pattern to be covered. It panics
// if attrs is empty or an attribute is not categorical.
func NewSpace(d *dataset.Dataset, attrs []string, threshold int) *Space {
	if len(attrs) == 0 {
		panic("coverage: NewSpace requires at least one attribute")
	}
	s := &Space{
		Attrs:     append([]string(nil), attrs...),
		Threshold: threshold,
		numRows:   d.NumRows(),
		pool:      bitmap.NewPool(d.NumRows()),
	}
	s.cols = make([][]int32, len(attrs))
	s.bits = make([][]bitmap.Bitmap, len(attrs))
	s.valCounts = make([][]int, len(attrs))
	for i, a := range attrs {
		codes, dict := d.Codes(a)
		s.cols[i] = codes
		s.Domains = append(s.Domains, dict)
		s.bits[i] = make([]bitmap.Bitmap, len(dict))
		s.valCounts[i] = make([]int, len(dict))
		for v := range dict {
			s.bits[i][v] = bitmap.New(s.numRows)
		}
		for r, c := range codes {
			if c >= 0 {
				s.bits[i][c].Set(r)
				s.valCounts[i][c]++
			}
		}
	}
	return s
}

// NumAttrs returns the number of attributes in the space.
func (s *Space) NumAttrs() int { return len(s.Attrs) }

// Root returns the all-wildcard pattern.
func (s *Space) Root() Pattern {
	p := make(Pattern, len(s.Attrs))
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// Count returns the number of rows matching p: the popcount of the
// intersection of the constrained positions' value bitmaps. Zero
// constraints count every row; one constraint is a precomputed popcount;
// two fuse into a single AND-popcount pass; deeper patterns intersect into
// pooled scratch. Pure and safe for concurrent use.
func (s *Space) Count(p Pattern) int {
	first, second := -1, -1
	rest := 0
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		switch {
		case first < 0:
			first = i
		case second < 0:
			second = i
		default:
			rest++
		}
	}
	switch {
	case first < 0:
		return s.numRows
	case second < 0:
		return s.valCounts[first][p[first]]
	case rest == 0:
		return bitmap.AndCount(s.bits[first][p[first]], s.bits[second][p[second]])
	}
	acc := s.pool.Get()
	n := bitmap.And(acc, s.bits[first][p[first]], s.bits[second][p[second]])
	for i := second + 1; i < len(p); i++ {
		if v := p[i]; v != Wildcard {
			n = bitmap.And(acc, acc, s.bits[i][v])
			if n == 0 {
				break
			}
		}
	}
	s.pool.Put(acc)
	return n
}

// countScan counts the rows matching p by scanning every row — the
// pre-bitmap implementation, kept as the unexported test oracle the
// property tests cross-check Count and the MUP walk against.
func (s *Space) countScan(p Pattern) int {
	n := 0
	for r := 0; r < s.numRows; r++ {
		ok := true
		for i, v := range p {
			if v != Wildcard && int(s.cols[i][r]) != v {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// Covered reports whether p meets the coverage threshold.
func (s *Space) Covered(p Pattern) bool { return s.Count(p) >= s.Threshold }

// Parents returns the immediate generalizations of p: each non-wildcard
// position replaced by a wildcard.
func (s *Space) Parents(p Pattern) []Pattern {
	var out []Pattern
	for i, v := range p {
		if v != Wildcard {
			q := p.Clone()
			q[i] = Wildcard
			out = append(out, q)
		}
	}
	return out
}

// Children returns the canonical children of p: positions strictly to the
// right of the rightmost non-wildcard are specialized with every domain
// value. Each pattern in the lattice is generated exactly once along this
// rule.
func (s *Space) Children(p Pattern) []Pattern {
	start := 0
	for i, v := range p {
		if v != Wildcard {
			start = i + 1
		}
	}
	var out []Pattern
	for i := start; i < len(p); i++ {
		for v := range s.Domains[i] {
			q := p.Clone()
			q[i] = v
			out = append(out, q)
		}
	}
	return out
}

// threshold, numValues, rootSet, childSet, and releaseSet implement the
// threaded-walk hooks (see mups.go): the DFS hands each node's row bitmap
// down the lattice so a child's count is one AND off its parent's set
// instead of a fresh intersection from the root.

func (s *Space) threshold() int      { return s.Threshold }
func (s *Space) numValues(i int) int { return len(s.Domains[i]) }

func (s *Space) rootSet() rowSet {
	return rowSet{count: s.numRows} // nil bitmap = all rows
}

func (s *Space) childSet(parent rowSet, pos, val int, st *walkStats) rowSet {
	vb := s.bits[pos][val]
	if parent.a == nil {
		// Level-1 child: share the precomputed value bitmap read-only.
		return rowSet{a: vb, count: s.valCounts[pos][val]}
	}
	st.ands++
	dst := s.pool.Get()
	n := bitmap.And(dst, parent.a, vb)
	//redi:allow poolcheck ownership transfers to the DFS caller; every child set is released by Space.releaseSet when its subtree pops
	return rowSet{a: dst, count: n, ownedA: true}
}

func (s *Space) observer() *obs.Registry { return obs.Active(s.Obs) }

func (s *Space) releaseSet(rs rowSet) {
	if rs.ownedA {
		s.pool.Put(rs.a)
	}
}

// Describe renders p with attribute names, e.g. "race=black, sex=*".
func (s *Space) Describe(p Pattern) string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Attrs[i])
		sb.WriteByte('=')
		if v == Wildcard {
			sb.WriteByte('*')
		} else {
			sb.WriteString(s.Domains[i][v])
		}
	}
	return sb.String()
}

// TotalPatterns returns the size of the pattern lattice: the product of
// (|domain|+1) over attributes.
func (s *Space) TotalPatterns() int {
	n := 1
	for _, d := range s.Domains {
		n *= len(d) + 1
	}
	return n
}
