// Package coverage implements group-representation analysis for datasets:
// maximal uncovered pattern (MUP) enumeration over categorical attributes
// (Asudeh, Jin, Jagadish, ICDE 2019), greedy coverage remedies, and
// neighborhood-based coverage for ordinal/continuous attributes (Asudeh et
// al., SIGMOD 2021).
//
// A pattern fixes a value for some subset of the attributes of interest and
// wildcards the rest; it is covered when at least Threshold rows match. The
// uncovered region of a dataset is summarized by its MUPs: uncovered
// patterns all of whose generalizations are covered.
package coverage

import (
	"fmt"
	"strings"
	"sync"

	"redi/internal/dataset"
)

// Wildcard marks an unconstrained position in a pattern.
const Wildcard = -1

// Pattern constrains a subset of attributes: entry i is either Wildcard or
// an index into the i-th attribute's domain.
type Pattern []int

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern {
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Level returns the number of non-wildcard positions.
func (p Pattern) Level() int {
	n := 0
	for _, v := range p {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// Matches reports whether the coded row matches the pattern. Codes of -1
// (null) match nothing but a wildcard.
func (p Pattern) Matches(codes []int) bool {
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		if codes[i] != v {
			return false
		}
	}
	return true
}

// Dominates reports whether p is a generalization of q (every constraint of
// p appears in q). Every pattern dominates itself.
func (p Pattern) Dominates(q Pattern) bool {
	for i, v := range p {
		if v != Wildcard && q[i] != v {
			return false
		}
	}
	return true
}

// key renders the pattern as a compact map key.
func (p Pattern) key() string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		if v == Wildcard {
			sb.WriteByte('X')
		} else {
			fmt.Fprintf(&sb, "%d", v)
		}
	}
	return sb.String()
}

// Space is the pattern search space over a dataset's attributes of
// interest: the per-row codes, the attribute domains, and the coverage
// threshold.
type Space struct {
	Attrs     []string
	Domains   [][]string // Domains[i] lists attribute i's values
	Threshold int

	rows   [][]int // coded rows; -1 for null
	mu     sync.Mutex
	counts map[string]int
}

// NewSpace prepares a pattern space over the given categorical attributes of
// d. Threshold is the minimum count for a pattern to be covered. It panics
// if attrs is empty or an attribute is not categorical.
func NewSpace(d *dataset.Dataset, attrs []string, threshold int) *Space {
	if len(attrs) == 0 {
		panic("coverage: NewSpace requires at least one attribute")
	}
	s := &Space{
		Attrs:     append([]string(nil), attrs...),
		Threshold: threshold,
		counts:    map[string]int{},
	}
	cols := make([][]int32, len(attrs))
	for i, a := range attrs {
		codes, dict := d.Codes(a)
		cols[i] = codes
		s.Domains = append(s.Domains, dict)
	}
	s.rows = make([][]int, d.NumRows())
	for r := range s.rows {
		row := make([]int, len(attrs))
		for i := range attrs {
			row[i] = int(cols[i][r])
		}
		s.rows[r] = row
	}
	return s
}

// NumAttrs returns the number of attributes in the space.
func (s *Space) NumAttrs() int { return len(s.Attrs) }

// Root returns the all-wildcard pattern.
func (s *Space) Root() Pattern {
	p := make(Pattern, len(s.Attrs))
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// Count returns the number of rows matching p, memoized. It is safe for
// concurrent use: only the memo map is guarded, so the row scan — the
// expensive part — runs outside the lock (two workers may redundantly
// count the same pattern, which is harmless).
func (s *Space) Count(p Pattern) int {
	k := p.key()
	s.mu.Lock()
	c, ok := s.counts[k]
	s.mu.Unlock()
	if ok {
		return c
	}
	c = 0
	for _, row := range s.rows {
		if p.Matches(row) {
			c++
		}
	}
	s.mu.Lock()
	s.counts[k] = c
	s.mu.Unlock()
	return c
}

// Covered reports whether p meets the coverage threshold.
func (s *Space) Covered(p Pattern) bool { return s.Count(p) >= s.Threshold }

// Parents returns the immediate generalizations of p: each non-wildcard
// position replaced by a wildcard.
func (s *Space) Parents(p Pattern) []Pattern {
	var out []Pattern
	for i, v := range p {
		if v != Wildcard {
			q := p.Clone()
			q[i] = Wildcard
			out = append(out, q)
		}
	}
	return out
}

// Children returns the canonical children of p: positions strictly to the
// right of the rightmost non-wildcard are specialized with every domain
// value. Each pattern in the lattice is generated exactly once along this
// rule.
func (s *Space) Children(p Pattern) []Pattern {
	start := 0
	for i, v := range p {
		if v != Wildcard {
			start = i + 1
		}
	}
	var out []Pattern
	for i := start; i < len(p); i++ {
		for v := range s.Domains[i] {
			q := p.Clone()
			q[i] = v
			out = append(out, q)
		}
	}
	return out
}

// Describe renders p with attribute names, e.g. "race=black, sex=*".
func (s *Space) Describe(p Pattern) string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Attrs[i])
		sb.WriteByte('=')
		if v == Wildcard {
			sb.WriteByte('*')
		} else {
			sb.WriteString(s.Domains[i][v])
		}
	}
	return sb.String()
}

// TotalPatterns returns the size of the pattern lattice: the product of
// (|domain|+1) over attributes.
func (s *Space) TotalPatterns() int {
	n := 1
	for _, d := range s.Domains {
		n *= len(d) + 1
	}
	return n
}
