package coverage

import (
	"sort"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

// tiny builds a dataset with a known uncovered region: no black females.
func tiny(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	add := func(race, sex string, n int) {
		for i := 0; i < n; i++ {
			d.MustAppendRow(dataset.Cat(race), dataset.Cat(sex))
		}
	}
	add("white", "F", 5)
	add("white", "M", 5)
	add("black", "M", 5)
	// black/F absent.
	return d
}

func TestPatternBasics(t *testing.T) {
	p := Pattern{Wildcard, 1}
	if p.Level() != 1 {
		t.Fatalf("Level = %d", p.Level())
	}
	if !p.Matches([]int{0, 1}) || p.Matches([]int{0, 0}) {
		t.Fatal("Matches wrong")
	}
	if !p.Matches([]int{-1, 1}) {
		t.Fatal("null should match wildcard")
	}
	q := Pattern{0, 1}
	if !p.Dominates(q) || q.Dominates(p) {
		t.Fatal("Dominates wrong")
	}
	if !p.Dominates(p) {
		t.Fatal("pattern must dominate itself")
	}
}

func TestSpaceCounting(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 3)
	if s.Count(s.Root()) != 15 {
		t.Fatalf("root count = %d", s.Count(s.Root()))
	}
	// Pattern race=white: 10 rows.
	white := Pattern{0, Wildcard} // "white" is code 0 (first appearance)
	if c := s.Count(white); c != 10 {
		t.Fatalf("white count = %d", c)
	}
	if s.TotalPatterns() != 9 { // (2+1)*(2+1)
		t.Fatalf("TotalPatterns = %d", s.TotalPatterns())
	}
}

func TestChildrenCanonical(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 3)
	// Children of the root: specialize each position.
	kids := s.Children(s.Root())
	if len(kids) != 4 { // 2 race values + 2 sex values
		t.Fatalf("root children = %d", len(kids))
	}
	// Children of (race=0, sex=*): only positions right of 0.
	kids = s.Children(Pattern{0, Wildcard})
	if len(kids) != 2 {
		t.Fatalf("children of level-1 = %d", len(kids))
	}
	// Fully specified patterns have no children.
	if len(s.Children(Pattern{0, 0})) != 0 {
		t.Fatal("leaf pattern has children")
	}
}

func mupKeys(s *Space, mups []MUP) []string {
	var out []string
	for _, m := range mups {
		out = append(out, s.Describe(m.Pattern))
	}
	sort.Strings(out)
	return out
}

func TestMUPsSimple(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 3)
	mups := s.MUPs()
	// The only uncovered pattern with covered parents is
	// race=black, sex=F (count 0): race=black has 5 and sex=F has 5.
	keys := mupKeys(s, mups)
	if len(keys) != 1 || keys[0] != "race=black, sex=F" {
		t.Fatalf("MUPs = %v", keys)
	}
	if mups[0].Count != 0 {
		t.Fatalf("MUP count = %d", mups[0].Count)
	}
}

func TestMUPsMatchNaive(t *testing.T) {
	// Randomized cross-check of pattern-breaker against the lattice
	// scan on populations with real skew.
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := synth.DefaultPopulation(300)
		p := synth.Generate(cfg, rng.New(seed))
		s := NewSpace(p.Data, []string{"race", "sex", "label"}, 20)
		fast := mupKeys(s, s.MUPs())
		slow := mupKeys(s, s.NaiveMUPs())
		if len(fast) != len(slow) {
			t.Fatalf("seed %d: fast %d MUPs, naive %d", seed, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("seed %d: MUP mismatch %q vs %q", seed, fast[i], slow[i])
			}
		}
	}
}

func TestMUPsRootUncovered(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 1000)
	mups := s.MUPs()
	if len(mups) != 1 || mups[0].Pattern.Level() != 0 {
		t.Fatalf("expected root MUP, got %v", mupKeys(s, mups))
	}
}

func TestMUPsNoneWhenCovered(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 1)
	// Threshold 1: black/F is still uncovered (count 0).
	mups := s.MUPs()
	if len(mups) != 1 {
		t.Fatalf("MUPs = %v", mupKeys(s, mups))
	}
	// Threshold 0: everything covered.
	s0 := NewSpace(d, []string{"race", "sex"}, 0)
	if got := s0.MUPs(); len(got) != 0 {
		t.Fatalf("threshold-0 MUPs = %v", mupKeys(s0, got))
	}
}

func TestCoveragePercent(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 3)
	// Combinations: white/F, white/M, black/M covered; black/F not.
	if pct := s.CoveragePercent(); pct != 0.75 {
		t.Fatalf("CoveragePercent = %v", pct)
	}
}

func TestUncoveredCombinations(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 3)
	mups := s.MUPs()
	combos := s.UncoveredCombinations(mups)
	if len(combos) != 1 || s.Describe(combos[0]) != "race=black, sex=F" {
		var got []string
		for _, c := range combos {
			got = append(got, s.Describe(c))
		}
		t.Fatalf("combinations = %v", got)
	}
}

func TestRemedyCoversAllMUPs(t *testing.T) {
	cfg := synth.DefaultPopulation(300)
	p := synth.Generate(cfg, rng.New(3))
	s := NewSpace(p.Data, []string{"race", "sex"}, 30)
	mups := s.MUPs()
	if len(mups) == 0 {
		t.Skip("no MUPs in this draw")
	}
	plan := s.Remedy(mups)
	if len(plan) == 0 {
		t.Fatal("empty remedy for nonempty MUPs")
	}
	// Simulate applying the plan: each step adds Count rows matching
	// its combination; verify every MUP reaches the threshold.
	for _, m := range mups {
		got := m.Count
		for _, st := range plan {
			if m.Pattern.Dominates(st.Combination) {
				got += st.Count
			}
		}
		if got < s.Threshold {
			t.Fatalf("MUP %s still uncovered after plan: %d < %d",
				s.Describe(m.Pattern), got, s.Threshold)
		}
	}
}

func TestRemedyEmpty(t *testing.T) {
	d := tiny(t)
	s := NewSpace(d, []string{"race", "sex"}, 1)
	if plan := s.Remedy(nil); plan != nil {
		t.Fatalf("Remedy(nil) = %v", plan)
	}
}

func TestRandomRemedyCostAtLeastGreedy(t *testing.T) {
	cfg := synth.DefaultPopulation(400)
	p := synth.Generate(cfg, rng.New(5))
	s := NewSpace(p.Data, []string{"race", "sex", "label"}, 25)
	mups := s.MUPs()
	if len(mups) == 0 {
		t.Skip("no MUPs in this draw")
	}
	greedy := RemedyCost(s.Remedy(mups))
	r := rng.New(6)
	random := s.RandomRemedyCost(mups, r.Intn)
	if random < greedy {
		t.Fatalf("random remedy (%d) beat greedy (%d)", random, greedy)
	}
}

func TestOrdinalCoverage(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
		dataset.Attribute{Name: "y", Kind: dataset.Numeric},
	))
	// A cluster of 5 points near the origin, one remote point.
	pts := [][2]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {-0.1, 0}, {0, -0.1}, {10, 10}}
	for _, p := range pts {
		d.MustAppendRow(dataset.Num(p[0]), dataset.Num(p[1]))
	}
	oc := NewOrdinalCoverage(d, []string{"x", "y"}, 0.5, 3)
	if oc.NumPoints() != 6 {
		t.Fatalf("NumPoints = %d", oc.NumPoints())
	}
	if !oc.Covered([]float64{0, 0}) {
		t.Fatal("origin should be covered")
	}
	if oc.Covered([]float64{10, 10}) {
		t.Fatal("remote point should be uncovered (only 1 neighbor, k=3)")
	}
	if oc.Covered([]float64{5, 5}) {
		t.Fatal("empty region should be uncovered")
	}
	frac := oc.UncoveredFraction([][]float64{{0, 0}, {10, 10}, {5, 5}})
	if frac != 2.0/3 {
		t.Fatalf("UncoveredFraction = %v", frac)
	}
}

func TestOrdinalCoverageMatchesBruteForce(t *testing.T) {
	p := synth.Generate(synth.DefaultPopulation(500), rng.New(7))
	attrs := []string{"f0", "f1"}
	oc := NewOrdinalCoverage(p.Data, attrs, 0.7, 5)
	x, _ := p.Data.NumericFull("f0")
	y, _ := p.Data.NumericFull("f1")
	r := rng.New(8)
	for i := 0; i < 50; i++ {
		q := []float64{r.Normal(0, 2), r.Normal(0, 2)}
		want := 0
		for j := range x {
			dx, dy := x[j]-q[0], y[j]-q[1]
			if dx*dx+dy*dy <= 0.7*0.7 {
				want++
			}
		}
		if got := oc.NeighborCount(q); got != want {
			t.Fatalf("query %v: grid count %d, brute force %d", q, got, want)
		}
	}
}

func TestOrdinalCoverageSkipsNulls(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
	))
	d.MustAppendRow(dataset.Num(1))
	d.MustAppendRow(dataset.NullValue(dataset.Numeric))
	oc := NewOrdinalCoverage(d, []string{"x"}, 1, 1)
	if oc.NumPoints() != 1 {
		t.Fatalf("NumPoints = %d, nulls should be skipped", oc.NumPoints())
	}
}

func TestOrdinalPanics(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric}))
	defer func() {
		if recover() == nil {
			t.Fatal("bad radius did not panic")
		}
	}()
	NewOrdinalCoverage(d, []string{"x"}, 0, 1)
}
