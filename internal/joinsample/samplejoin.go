package joinsample

import (
	"redi/internal/rng"
	"redi/internal/stats"
)

// BernoulliJoinSample is sample-then-join, the approach §3.4 opens with:
// every tuple of R and S is kept independently with probability p and the
// kept halves are joined. Each join result survives with probability p²,
// so the result IS a uniform (Bernoulli) sample of R ⋈ S — but results
// sharing a kept tuple survive together, so the sample is highly
// correlated: aggregates computed from it have far higher variance than
// the same number of independent samples. The returned paths are (R index,
// S index) pairs.
func BernoulliJoinSample(R, S *Relation, p float64, r *rng.RNG) [][2]int {
	keepR := make([]bool, R.Len())
	for i := range keepR {
		keepR[i] = r.Bool(p)
	}
	var out [][2]int
	for j, t := range S.Tuples {
		if !r.Bool(p) {
			continue
		}
		for _, i := range matchRight(R, t.Left) {
			if keepR[i] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// matchRight returns indices of R tuples whose Right key equals k. R is
// indexed on Left, so this is a scan; BernoulliJoinSample is a baseline,
// not a fast path.
func matchRight(R *Relation, k int64) []int {
	var out []int
	for i, t := range R.Tuples {
		if t.Right == k {
			out = append(out, i)
		}
	}
	return out
}

// AvgEstimatorVariance empirically compares the variance of the AVG
// estimator under sample-then-join versus independent uniform samples of
// the same expected size, over trials repetitions. It returns the two
// variances; the correlation penalty is their ratio. The aggregate is
// r.Value + s.Value per result.
func AvgEstimatorVariance(R, S *Relation, p float64, trials int, r *rng.RNG) (stjVar, iidVar float64, err error) {
	chain, err := NewChain(R, S)
	if err != nil {
		return 0, 0, err
	}
	var stj, iid stats.Estimator
	var stjSq, iidSq stats.Estimator
	expected := 0
	for trial := 0; trial < trials; trial++ {
		paths := BernoulliJoinSample(R, S, p, r)
		if len(paths) == 0 {
			continue
		}
		expected += len(paths)
		sum := 0.0
		for _, pr := range paths {
			sum += R.Tuples[pr[0]].Value + S.Tuples[pr[1]].Value
		}
		avg := sum / float64(len(paths))
		stj.Add(avg)
		stjSq.Add(avg * avg)

		// Independent samples of the same size from the same join.
		sum = 0.0
		for i := 0; i < len(paths); i++ {
			path, ok := chain.ExactSample(r)
			if !ok {
				return 0, 0, err
			}
			sum += chain.PathValue(path)
		}
		avg = sum / float64(len(paths))
		iid.Add(avg)
		iidSq.Add(avg * avg)
	}
	stjVar = stjSq.Mean() - stj.Mean()*stj.Mean()
	iidVar = iidSq.Mean() - iid.Mean()*iid.Mean()
	return stjVar, iidVar, nil
}
