package joinsample

import (
	"errors"

	"redi/internal/rng"
	"redi/internal/stats"
)

// AcceptReject is the two-relation uniform join sampler of Chaudhuri,
// Motwani, and Narasayya (SIGMOD 1999). It draws a tuple r from R uniformly
// and accepts it with probability d(r)/M, where d(r) is the number of S
// tuples joining r and M the maximum such fan-out; on acceptance it returns
// r paired with a uniform matching S tuple. Accepted samples are uniform
// and independent over R ⋈ S, and the sampler needs only the fan-out
// statistics of S — not the full completion weights of the exact sampler.
type AcceptReject struct {
	R, S *Relation
	maxM int
}

// NewAcceptReject prepares the sampler. It returns an error if either
// relation is empty or S has no join keys at all.
func NewAcceptReject(r, s *Relation) (*AcceptReject, error) {
	if r.Len() == 0 || s.Len() == 0 {
		return nil, errors.New("joinsample: empty relation")
	}
	m := s.MaxLeftFrequency()
	if m == 0 {
		return nil, errors.New("joinsample: S has no tuples")
	}
	return &AcceptReject{R: r, S: s, maxM: m}, nil
}

// Sample attempts one draw. ok is false on rejection (including when the
// drawn R tuple has no matches); callers loop until ok. attempts counts the
// R draws consumed, for throughput accounting.
func (a *AcceptReject) Sample(rg *rng.RNG) (rIdx, sIdx int, ok bool) {
	rIdx = rg.Intn(a.R.Len())
	matches := a.S.MatchLeft(a.R.Tuples[rIdx].Right)
	if len(matches) == 0 {
		return 0, 0, false
	}
	if !rg.Bool(float64(len(matches)) / float64(a.maxM)) {
		return 0, 0, false
	}
	return rIdx, matches[rg.Intn(len(matches))], true
}

// SampleN draws n accepted samples, looping over rejections. It returns the
// samples and the total number of attempts consumed.
func (a *AcceptReject) SampleN(rg *rng.RNG, n int) (paths [][2]int, attempts int) {
	paths = make([][2]int, 0, n)
	for len(paths) < n {
		attempts++
		if r, s, ok := a.Sample(rg); ok {
			paths = append(paths, [2]int{r, s})
		}
		if attempts > 1000*(n+1000) {
			// Pathological acceptance rate; bail out rather than spin.
			return paths, attempts
		}
	}
	return paths, attempts
}

// WanderEstimator estimates COUNT and SUM aggregates over a chain join from
// wander-join walks using Horvitz–Thompson weighting. Failed walks
// contribute zero, keeping the estimator unbiased.
type WanderEstimator struct {
	Chain *Chain
	count stats.Estimator
	sum   stats.Estimator
}

// NewWanderEstimator wraps a chain.
func NewWanderEstimator(c *Chain) *WanderEstimator { return &WanderEstimator{Chain: c} }

// Step performs one walk and folds it into the running estimates.
func (w *WanderEstimator) Step(r *rng.RNG) {
	path, invProb, ok := w.Chain.WanderSample(r)
	if !ok {
		w.count.Add(0)
		w.sum.Add(0)
		return
	}
	w.count.Add(invProb)
	w.sum.Add(invProb * w.Chain.PathValue(path))
}

// Count returns the running COUNT estimate and its half-width confidence
// interval at the given level.
func (w *WanderEstimator) Count(level float64) (est, ci float64) {
	return w.count.Mean(), w.count.CI(level)
}

// Sum returns the running SUM estimate and confidence interval.
func (w *WanderEstimator) Sum(level float64) (est, ci float64) {
	return w.sum.Mean(), w.sum.CI(level)
}

// Avg returns the running AVG estimate (SUM/COUNT). Its error bound is not
// a simple CI because it is a ratio estimator; experiments report relative
// error against ground truth instead.
func (w *WanderEstimator) Avg() float64 {
	c := w.count.Mean()
	if c == 0 {
		return 0
	}
	return w.sum.Mean() / c
}

// Steps returns the number of walks performed.
func (w *WanderEstimator) Steps() float64 { return w.count.N() }

// UniformEstimator estimates SUM/AVG aggregates from exact uniform samples
// (Chain.ExactSample): since samples are uniform over the join result and
// the result size is known exactly, SUM = JoinCount × mean(f).
type UniformEstimator struct {
	Chain *Chain
	f     stats.Estimator
}

// NewUniformEstimator wraps a chain.
func NewUniformEstimator(c *Chain) *UniformEstimator { return &UniformEstimator{Chain: c} }

// Step draws one uniform sample. It is a no-op on an empty join.
func (u *UniformEstimator) Step(r *rng.RNG) {
	path, ok := u.Chain.ExactSample(r)
	if !ok {
		return
	}
	u.f.Add(u.Chain.PathValue(path))
}

// Sum returns the running SUM estimate and confidence interval.
func (u *UniformEstimator) Sum(level float64) (est, ci float64) {
	return u.Chain.JoinCount() * u.f.Mean(), u.Chain.JoinCount() * u.f.CI(level)
}

// Avg returns the running AVG estimate and confidence interval.
func (u *UniformEstimator) Avg(level float64) (est, ci float64) {
	return u.f.Mean(), u.f.CI(level)
}
