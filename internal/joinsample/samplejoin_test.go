package joinsample

import (
	"testing"

	"redi/internal/rng"
	"redi/internal/stats"
)

func TestBernoulliJoinSampleMarginallyUniform(t *testing.T) {
	R, S := skewedPair()
	chain := mustChain(t, R, S)
	r := rng.New(1)
	// Pool many sample-then-join runs; marginally each result appears
	// with probability p², so the pooled empirical distribution over
	// results is uniform.
	counts := map[string]float64{}
	total := 0.0
	for trial := 0; trial < 4000; trial++ {
		for _, pr := range BernoulliJoinSample(R, S, 0.3, r) {
			counts[PathKey([]int{pr[0], pr[1]})]++
			total++
		}
	}
	results := int(chain.JoinCount())
	if len(counts) != results {
		t.Fatalf("observed %d of %d results", len(counts), results)
	}
	emp := make([]float64, 0, results)
	uni := make([]float64, 0, results)
	for _, c := range counts {
		emp = append(emp, c/total)
		uni = append(uni, 1/float64(results))
	}
	if tv := stats.TotalVariation(emp, uni); tv > 0.05 {
		t.Fatalf("pooled sample-then-join TV from uniform = %v (marginal uniformity should hold)", tv)
	}
}

func TestSampleThenJoinCorrelationPenalty(t *testing.T) {
	// The §3.4 observation: with heavy fan-out skew, sample-then-join's
	// AVG estimator has materially higher variance than the same number
	// of independent samples — because results sharing a kept R tuple
	// survive together.
	var rt []Tuple
	for k := int64(0); k < 20; k++ {
		rt = append(rt, Tuple{Right: k, Value: float64(k * 10)})
	}
	var st []Tuple
	// One enormous key, many tiny ones.
	for i := 0; i < 400; i++ {
		st = append(st, Tuple{Left: 0, Value: 1})
	}
	for k := int64(1); k < 20; k++ {
		st = append(st, Tuple{Left: k, Value: 1})
	}
	R := NewRelation("R", rt)
	S := NewRelation("S", st)
	stjVar, iidVar, err := AvgEstimatorVariance(R, S, 0.3, 300, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if iidVar <= 0 {
		t.Fatalf("iid variance = %v", iidVar)
	}
	if stjVar < 3*iidVar {
		t.Fatalf("correlation penalty too small: stj %v vs iid %v", stjVar, iidVar)
	}
}

func TestBernoulliJoinSampleDegenerate(t *testing.T) {
	R, S := skewedPair()
	if got := BernoulliJoinSample(R, S, 0, rng.New(3)); len(got) != 0 {
		t.Fatalf("p=0 produced %d results", len(got))
	}
	chain := mustChain(t, R, S)
	all := BernoulliJoinSample(R, S, 1, rng.New(4))
	if float64(len(all)) != chain.JoinCount() {
		t.Fatalf("p=1 produced %d results, want %v", len(all), chain.JoinCount())
	}
}
