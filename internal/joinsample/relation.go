// Package joinsample implements random sampling over joins, the §3.4
// toolbox of the tutorial: the biased stream sampler that motivated the
// problem, the Chaudhuri–Motwani–Narasayya accept/reject sampler (SIGMOD
// 1999), exact weighted sampling over multi-way chain joins (the exact-
// frequency instantiation of Zhao et al., SIGMOD 2018), wander join random
// walks with Horvitz–Thompson estimates (Li et al., SIGMOD 2016), and
// ripple join online aggregation (Haas & Hellerstein; Luo et al., SIGMOD
// 2002).
//
// Relations are flat tuple arrays with integer join keys: a chain join
// R1 ⋈ R2 ⋈ ... ⋈ Rn matches Ri's right key with Ri+1's left key. Each
// tuple carries a float64 value so that SUM/AVG/COUNT aggregates over the
// join can be estimated and compared against exact answers.
package joinsample

import (
	"errors"
	"fmt"

	"redi/internal/dataset"
)

// Tuple is one row of a join relation: a left key (matching the previous
// relation in the chain), a right key (matching the next), and a value used
// by aggregates.
type Tuple struct {
	Left  int64
	Right int64
	Value float64
}

// Relation is an array of tuples indexed by left key.
type Relation struct {
	Name   string
	Tuples []Tuple

	byLeft map[int64][]int
}

// NewRelation builds a relation and its left-key index.
func NewRelation(name string, tuples []Tuple) *Relation {
	r := &Relation{Name: name, Tuples: tuples, byLeft: map[int64][]int{}}
	for i, t := range tuples {
		r.byLeft[t.Left] = append(r.byLeft[t.Left], i)
	}
	return r
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// MatchLeft returns the indices of tuples whose left key equals k.
func (r *Relation) MatchLeft(k int64) []int { return r.byLeft[k] }

// MaxLeftFrequency returns the largest number of tuples sharing one left
// key (the M statistic of the accept/reject sampler).
func (r *Relation) MaxLeftFrequency() int {
	m := 0
	for _, idx := range r.byLeft {
		if len(idx) > m {
			m = len(idx)
		}
	}
	return m
}

// FromDataset converts a dataset into a relation: leftAttr and rightAttr
// are categorical attributes whose dictionary codes become join keys, and
// valueAttr (optional, "" to use 1) is a numeric attribute providing tuple
// values. Rows with a null in any used attribute are skipped.
func FromDataset(d *dataset.Dataset, name, leftAttr, rightAttr, valueAttr string) (*Relation, error) {
	if leftAttr == "" && rightAttr == "" {
		return nil, errors.New("joinsample: need at least one join attribute")
	}
	var leftCodes, rightCodes []int32
	if leftAttr != "" {
		leftCodes, _ = d.Codes(leftAttr)
	}
	if rightAttr != "" {
		rightCodes, _ = d.Codes(rightAttr)
	}
	var vals []float64
	var nulls []bool
	if valueAttr != "" {
		vals, nulls = d.NumericFull(valueAttr)
	}
	var tuples []Tuple
	for i := 0; i < d.NumRows(); i++ {
		t := Tuple{Value: 1}
		if leftCodes != nil {
			if leftCodes[i] < 0 {
				continue
			}
			t.Left = int64(leftCodes[i])
		}
		if rightCodes != nil {
			if rightCodes[i] < 0 {
				continue
			}
			t.Right = int64(rightCodes[i])
		}
		if vals != nil {
			if nulls[i] {
				continue
			}
			t.Value = vals[i]
		}
		tuples = append(tuples, t)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("joinsample: relation %q has no usable rows", name)
	}
	return NewRelation(name, tuples), nil
}

// PathKey canonically encodes a join-result path (one tuple index per
// relation) for use as a map key in uniformity tests.
func PathKey(path []int) string {
	b := make([]byte, 0, len(path)*6)
	for i, p := range path {
		if i > 0 {
			b = append(b, ':')
		}
		b = appendUint(b, p)
	}
	return string(b)
}

func appendUint(b []byte, v int) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}
