package joinsample

import (
	"errors"
	"fmt"

	"redi/internal/rng"
)

// Stratified samples join results uniformly *within demographic groups*:
// the marriage of §3.4 (random sampling over joins) and §2.2 (group
// representation) that the tutorial's "Uniform Sampling over Data Lakes"
// opportunity calls for. A result's group is the group of its first-
// relation tuple (e.g. the patient row); per-group completion weights make
// each within-group draw exactly uniform and independent, so a caller can
// assemble a join sample that meets group count requirements without
// materializing the join.
type Stratified struct {
	Chain   *Chain
	GroupOf []int // group of each R1 tuple
	K       int

	groupTotals []float64
	groupCats   []*rng.Categorical
	groupTuples [][]int
}

// NewStratified prepares per-group samplers over the chain. groupOf[i] is
// the group (in [0, k)) of the chain's first relation's tuple i. It returns
// an error on length mismatch or an out-of-range group.
func NewStratified(c *Chain, groupOf []int, k int) (*Stratified, error) {
	if len(groupOf) != c.Rels[0].Len() {
		return nil, fmt.Errorf("joinsample: groupOf has %d entries, R1 has %d tuples",
			len(groupOf), c.Rels[0].Len())
	}
	s := &Stratified{
		Chain:       c,
		GroupOf:     append([]int(nil), groupOf...),
		K:           k,
		groupTotals: make([]float64, k),
		groupCats:   make([]*rng.Categorical, k),
		groupTuples: make([][]int, k),
	}
	weights := make([][]float64, k)
	for t, g := range groupOf {
		if g < 0 || g >= k {
			return nil, fmt.Errorf("joinsample: tuple %d has group %d outside [0,%d)", t, g, k)
		}
		w := c.weights[0][t]
		s.groupTotals[g] += w
		if w > 0 {
			s.groupTuples[g] = append(s.groupTuples[g], t)
			weights[g] = append(weights[g], w)
		}
	}
	for g := 0; g < k; g++ {
		if s.groupTotals[g] > 0 {
			s.groupCats[g] = rng.NewCategorical(weights[g])
		}
	}
	return s, nil
}

// GroupJoinCount returns the exact number of join results whose first
// tuple belongs to group g.
func (s *Stratified) GroupJoinCount(g int) float64 { return s.groupTotals[g] }

// Sample draws one join result uniformly among the results of group g,
// independent of all other draws. ok is false when group g has no results.
func (s *Stratified) Sample(g int, r *rng.RNG) (path []int, ok bool) {
	if g < 0 || g >= s.K || s.groupCats[g] == nil {
		return nil, false
	}
	path = make([]int, len(s.Chain.Rels))
	path[0] = s.groupTuples[g][s.groupCats[g].Draw(r)]
	for i := 1; i < len(s.Chain.Rels); i++ {
		prev := s.Chain.Rels[i-1].Tuples[path[i-1]]
		matches := s.Chain.Rels[i].MatchLeft(prev.Right)
		total := 0.0
		for _, j := range matches {
			total += s.Chain.weights[i][j]
		}
		x := r.Float64() * total
		pick := matches[len(matches)-1]
		for _, j := range matches {
			x -= s.Chain.weights[i][j]
			if x <= 0 {
				pick = j
				break
			}
		}
		path[i] = pick
	}
	return path, true
}

// SampleCounts draws need[g] results from each group (a distribution-
// tailored join sample). It returns an error if a requested group has no
// join results.
func (s *Stratified) SampleCounts(need []int, r *rng.RNG) ([][]int, error) {
	if len(need) != s.K {
		return nil, errors.New("joinsample: need length mismatch")
	}
	var out [][]int
	for g, n := range need {
		if n > 0 && s.groupTotals[g] == 0 {
			return nil, fmt.Errorf("joinsample: group %d has no join results", g)
		}
		for i := 0; i < n; i++ {
			path, _ := s.Sample(g, r)
			out = append(out, path)
		}
	}
	return out, nil
}
