package joinsample

import (
	"testing"

	"redi/internal/rng"
	"redi/internal/stats"
)

// stratifiedFixture: R1 tuples belong to 2 groups with very different
// fan-outs, so plain uniform join sampling under-represents group 1.
func stratifiedFixture(t *testing.T) (*Chain, []int) {
	t.Helper()
	var rt []Tuple
	groups := make([]int, 0, 20)
	for k := int64(0); k < 20; k++ {
		rt = append(rt, Tuple{Right: k, Value: float64(k)})
		if k < 16 {
			groups = append(groups, 0)
		} else {
			groups = append(groups, 1)
		}
	}
	var st []Tuple
	// Group-0 keys have fan-out 10; group-1 keys fan-out 1.
	for k := int64(0); k < 16; k++ {
		for i := 0; i < 10; i++ {
			st = append(st, Tuple{Left: k, Value: 1})
		}
	}
	for k := int64(16); k < 20; k++ {
		st = append(st, Tuple{Left: k, Value: 1})
	}
	c, err := NewChain(NewRelation("R", rt), NewRelation("S", st))
	if err != nil {
		t.Fatal(err)
	}
	return c, groups
}

func TestStratifiedGroupCounts(t *testing.T) {
	c, groups := stratifiedFixture(t)
	s, err := NewStratified(c, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0: 16 keys x 10 = 160 results; group 1: 4 keys x 1 = 4.
	if s.GroupJoinCount(0) != 160 || s.GroupJoinCount(1) != 4 {
		t.Fatalf("group counts = %v %v", s.GroupJoinCount(0), s.GroupJoinCount(1))
	}
}

func TestStratifiedSampleRespectsGroup(t *testing.T) {
	c, groups := stratifiedFixture(t)
	s, err := NewStratified(c, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		path, ok := s.Sample(1, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if groups[path[0]] != 1 {
			t.Fatalf("group-1 sample came from group %d", groups[path[0]])
		}
	}
}

func TestStratifiedWithinGroupUniform(t *testing.T) {
	c, groups := stratifiedFixture(t)
	s, err := NewStratified(c, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	counts := map[string]float64{}
	const n = 32000
	for i := 0; i < n; i++ {
		path, _ := s.Sample(0, r)
		counts[PathKey(path)]++
	}
	if len(counts) != 160 {
		t.Fatalf("observed %d distinct group-0 results, want 160", len(counts))
	}
	emp := make([]float64, 0, 160)
	uni := make([]float64, 0, 160)
	for _, v := range counts {
		emp = append(emp, v/n)
		uni = append(uni, 1.0/160)
	}
	if tv := stats.TotalVariation(emp, uni); tv > 0.05 {
		t.Fatalf("within-group TV from uniform = %v", tv)
	}
}

func TestStratifiedSampleCounts(t *testing.T) {
	c, groups := stratifiedFixture(t)
	s, err := NewStratified(c, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := s.SampleCounts([]int{10, 30}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 40 {
		t.Fatalf("paths = %d", len(paths))
	}
	got := [2]int{}
	for _, p := range paths {
		got[groups[p[0]]]++
	}
	if got[0] != 10 || got[1] != 30 {
		t.Fatalf("group sample counts = %v", got)
	}
}

func TestStratifiedErrors(t *testing.T) {
	c, groups := stratifiedFixture(t)
	if _, err := NewStratified(c, groups[:3], 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := append([]int(nil), groups...)
	bad[0] = 7
	if _, err := NewStratified(c, bad, 2); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	s, err := NewStratified(c, groups, 3) // group 2 exists but is empty
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(2, rng.New(4)); ok {
		t.Fatal("empty group sampled")
	}
	if _, err := s.SampleCounts([]int{0, 0, 1}, rng.New(5)); err == nil {
		t.Fatal("unsatisfiable count accepted")
	}
	if _, err := s.SampleCounts([]int{1}, rng.New(6)); err == nil {
		t.Fatal("need length mismatch accepted")
	}
}

func TestStratifiedDeadEndGroup(t *testing.T) {
	// A group whose only R1 tuple has no S matches: zero join results.
	rt := []Tuple{{Right: 0}, {Right: 99}}
	st := []Tuple{{Left: 0}}
	c, err := NewChain(NewRelation("R", rt), NewRelation("S", st))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStratified(c, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupJoinCount(1) != 0 {
		t.Fatalf("dead-end group count = %v", s.GroupJoinCount(1))
	}
	if _, ok := s.Sample(1, rng.New(7)); ok {
		t.Fatal("dead-end group sampled")
	}
}
