package joinsample

import (
	"errors"
	"math"

	"redi/internal/rng"
	"redi/internal/stats"
)

// Ripple is a two-relation square ripple join for online aggregation (Haas
// & Hellerstein, SIGMOD 1999; hash variant of Luo et al., SIGMOD 2002): it
// consumes the two inputs in random order, alternating sides, maintains the
// join of the consumed prefixes with hash indexes, and reports scaled
// running estimates of COUNT, SUM, and AVG over the full join. Its samples
// are random but not independent — the textbook contrast to wander join.
type Ripple struct {
	R, S *Relation

	permR, permS []int
	kr, ks       int
	hashR, hashS map[int64][]int // key -> consumed tuple indices

	matchCount float64
	matchSum   float64 // sum of (r.Value + s.Value) over matched pairs
	// Welford accumulators over per-pair values for the CI on AVG.
	pairMean, pairM2 float64
}

// NewRipple prepares a ripple join over r and s, consuming both in a random
// order derived from rg. It returns an error if either relation is empty.
func NewRipple(r, s *Relation, rg *rng.RNG) (*Ripple, error) {
	if r.Len() == 0 || s.Len() == 0 {
		return nil, errors.New("joinsample: empty relation")
	}
	return &Ripple{
		R:     r,
		S:     s,
		permR: rg.Perm(r.Len()),
		permS: rg.Perm(s.Len()),
		hashR: map[int64][]int{},
		hashS: map[int64][]int{},
	}, nil
}

// Done reports whether both inputs are fully consumed (at which point the
// estimates are exact).
func (rp *Ripple) Done() bool { return rp.kr == rp.R.Len() && rp.ks == rp.S.Len() }

// Step consumes one tuple, alternating sides (preferring the side that is
// proportionally less consumed, which keeps the ripple square).
func (rp *Ripple) Step() {
	if rp.Done() {
		return
	}
	takeR := rp.ks == rp.S.Len() ||
		(rp.kr < rp.R.Len() && float64(rp.kr)*float64(rp.S.Len()) <= float64(rp.ks)*float64(rp.R.Len()))
	if takeR {
		idx := rp.permR[rp.kr]
		rp.kr++
		t := rp.R.Tuples[idx]
		for _, j := range rp.hashS[t.Right] {
			rp.addPair(t, rp.S.Tuples[j])
		}
		rp.hashR[t.Right] = append(rp.hashR[t.Right], idx)
	} else {
		idx := rp.permS[rp.ks]
		rp.ks++
		t := rp.S.Tuples[idx]
		for _, j := range rp.hashR[t.Left] {
			rp.addPair(rp.R.Tuples[j], t)
		}
		rp.hashS[t.Left] = append(rp.hashS[t.Left], idx)
	}
}

func (rp *Ripple) addPair(r, s Tuple) {
	v := r.Value + s.Value
	rp.matchCount++
	rp.matchSum += v
	d := v - rp.pairMean
	rp.pairMean += d / rp.matchCount
	rp.pairM2 += d * (v - rp.pairMean)
}

// Steps returns the number of consumed tuples across both inputs.
func (rp *Ripple) Steps() int { return rp.kr + rp.ks }

// scale is the prefix-to-full extrapolation factor |R||S|/(kR·kS).
func (rp *Ripple) scale() float64 {
	if rp.kr == 0 || rp.ks == 0 {
		return 0
	}
	return float64(rp.R.Len()) * float64(rp.S.Len()) / (float64(rp.kr) * float64(rp.ks))
}

// CountEstimate returns the running estimate of |R ⋈ S|.
func (rp *Ripple) CountEstimate() float64 { return rp.matchCount * rp.scale() }

// SumEstimate returns the running estimate of SUM(r.Value + s.Value) over
// the join.
func (rp *Ripple) SumEstimate() float64 { return rp.matchSum * rp.scale() }

// AvgEstimate returns the running estimate of AVG(r.Value + s.Value) over
// the join and a (heuristic) CLT half-width at the given confidence level,
// treating matched pairs as samples. The half-width is +Inf before two
// pairs have matched. Ripple samples are not independent, so this interval
// is approximate — the classic caveat of the method.
func (rp *Ripple) AvgEstimate(level float64) (est, ci float64) {
	if rp.matchCount == 0 {
		return 0, math.Inf(1)
	}
	est = rp.matchSum / rp.matchCount
	if rp.matchCount < 2 {
		return est, math.Inf(1)
	}
	variance := rp.pairM2 / (rp.matchCount - 1)
	z := stats.NormalQuantile(0.5 + level/2)
	return est, z * math.Sqrt(variance/rp.matchCount)
}
