package joinsample

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/stats"
)

// skewedPair builds R and S with a highly skewed join-key fan-out: key 0
// has many matches in S, the other keys few. This is the regime where
// naive sampling is visibly biased.
func skewedPair() (*Relation, *Relation) {
	var rt []Tuple
	for k := int64(0); k < 10; k++ {
		rt = append(rt, Tuple{Right: k, Value: float64(k)})
	}
	var st []Tuple
	// key 0: 50 matches; keys 1..9: 2 matches each.
	for i := 0; i < 50; i++ {
		st = append(st, Tuple{Left: 0, Value: 1})
	}
	for k := int64(1); k < 10; k++ {
		st = append(st, Tuple{Left: k, Value: 1}, Tuple{Left: k, Value: 2})
	}
	return NewRelation("R", rt), NewRelation("S", st)
}

func mustChain(t *testing.T, rels ...*Relation) *Chain {
	t.Helper()
	c, err := NewChain(rels...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainJoinCount(t *testing.T) {
	r, s := skewedPair()
	c := mustChain(t, r, s)
	// 50 + 9*2 = 68 results.
	if c.JoinCount() != 68 {
		t.Fatalf("JoinCount = %v, want 68", c.JoinCount())
	}
	count, sum := c.ExactAggregates()
	if count != 68 {
		t.Fatalf("enumerated count = %v", count)
	}
	if sum <= 0 {
		t.Fatalf("enumerated sum = %v", sum)
	}
}

func TestChainEmptyJoin(t *testing.T) {
	r := NewRelation("R", []Tuple{{Right: 1}})
	s := NewRelation("S", []Tuple{{Left: 2}})
	c := mustChain(t, r, s)
	if c.JoinCount() != 0 {
		t.Fatalf("JoinCount = %v", c.JoinCount())
	}
	if _, ok := c.ExactSample(rng.New(1)); ok {
		t.Fatal("ExactSample on empty join returned ok")
	}
}

func TestChainErrors(t *testing.T) {
	if _, err := NewChain(); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestExactSampleUniform(t *testing.T) {
	r, s := skewedPair()
	c := mustChain(t, r, s)
	rg := rng.New(2)
	counts := map[string]float64{}
	const n = 68000
	for i := 0; i < n; i++ {
		path, ok := c.ExactSample(rg)
		if !ok {
			t.Fatal("sample failed on non-empty join")
		}
		counts[PathKey(path)]++
	}
	if len(counts) != 68 {
		t.Fatalf("observed %d distinct results, want 68", len(counts))
	}
	// Empirical vs uniform TV distance should be small.
	emp := make([]float64, 0, 68)
	uni := make([]float64, 0, 68)
	for _, v := range counts {
		emp = append(emp, v/n)
		uni = append(uni, 1.0/68)
	}
	if tv := stats.TotalVariation(emp, uni); tv > 0.03 {
		t.Fatalf("exact sampler TV from uniform = %v", tv)
	}
}

func TestNaiveSampleBiased(t *testing.T) {
	r, s := skewedPair()
	c := mustChain(t, r, s)
	rg := rng.New(3)
	heavy := 0.0
	total := 0.0
	for i := 0; i < 50000; i++ {
		path, ok := c.NaiveSample(rg)
		if !ok {
			continue
		}
		total++
		if c.Rels[0].Tuples[path[0]].Right == 0 {
			heavy++
		}
	}
	// Under uniform-over-results, key 0 results are 50/68 ≈ 73.5%.
	// Naive gives each R tuple 1/10 regardless of fan-out, so ~10%.
	frac := heavy / total
	if frac > 0.3 {
		t.Fatalf("naive sampler not biased as expected: heavy frac = %v", frac)
	}
}

func TestAcceptRejectUniform(t *testing.T) {
	r, s := skewedPair()
	ar, err := NewAcceptReject(r, s)
	if err != nil {
		t.Fatal(err)
	}
	rg := rng.New(4)
	counts := map[[2]int]float64{}
	paths, attempts := ar.SampleN(rg, 40000)
	if len(paths) != 40000 {
		t.Fatalf("got %d accepted samples", len(paths))
	}
	if attempts <= len(paths) {
		t.Fatal("attempts should exceed accepted samples under rejection")
	}
	for _, p := range paths {
		counts[p]++
	}
	if len(counts) != 68 {
		t.Fatalf("observed %d distinct results, want 68", len(counts))
	}
	emp := make([]float64, 0, 68)
	uni := make([]float64, 0, 68)
	for _, v := range counts {
		emp = append(emp, v/40000)
		uni = append(uni, 1.0/68)
	}
	if tv := stats.TotalVariation(emp, uni); tv > 0.04 {
		t.Fatalf("accept/reject TV from uniform = %v", tv)
	}
}

func TestAcceptRejectErrors(t *testing.T) {
	empty := NewRelation("E", nil)
	r, _ := skewedPair()
	if _, err := NewAcceptReject(empty, r); err == nil {
		t.Fatal("empty R accepted")
	}
	if _, err := NewAcceptReject(r, empty); err == nil {
		t.Fatal("empty S accepted")
	}
}

func TestWanderEstimatorUnbiased(t *testing.T) {
	r, s := skewedPair()
	c := mustChain(t, r, s)
	truth, truthSum := c.ExactAggregates()
	w := NewWanderEstimator(c)
	rg := rng.New(5)
	for i := 0; i < 30000; i++ {
		w.Step(rg)
	}
	count, ci := w.Count(0.95)
	if math.Abs(count-truth) > 3*ci || math.Abs(count-truth)/truth > 0.1 {
		t.Fatalf("wander COUNT = %v ± %v, truth %v", count, ci, truth)
	}
	sum, _ := w.Sum(0.95)
	if stats.RelativeError(sum, truthSum) > 0.1 {
		t.Fatalf("wander SUM = %v, truth %v", sum, truthSum)
	}
	avg := w.Avg()
	if stats.RelativeError(avg, truthSum/truth) > 0.1 {
		t.Fatalf("wander AVG = %v, truth %v", avg, truthSum/truth)
	}
	if w.Steps() != 30000 {
		t.Fatalf("Steps = %v", w.Steps())
	}
}

func TestWanderThreeWayChain(t *testing.T) {
	// R1 -> R2 -> R3 with small, fully enumerable join.
	r1 := NewRelation("R1", []Tuple{{Right: 0, Value: 1}, {Right: 1, Value: 2}})
	r2 := NewRelation("R2", []Tuple{
		{Left: 0, Right: 10, Value: 3}, {Left: 0, Right: 11, Value: 4}, {Left: 1, Right: 10, Value: 5},
	})
	r3 := NewRelation("R3", []Tuple{{Left: 10, Value: 6}, {Left: 10, Value: 7}, {Left: 11, Value: 8}})
	c := mustChain(t, r1, r2, r3)
	truth, truthSum := c.ExactAggregates()
	if truth != c.JoinCount() {
		t.Fatalf("enumerate (%v) and DP (%v) disagree", truth, c.JoinCount())
	}
	w := NewWanderEstimator(c)
	rg := rng.New(6)
	for i := 0; i < 50000; i++ {
		w.Step(rg)
	}
	count, _ := w.Count(0.95)
	if stats.RelativeError(count, truth) > 0.05 {
		t.Fatalf("3-way wander COUNT = %v, truth %v", count, truth)
	}
	sum, _ := w.Sum(0.95)
	if stats.RelativeError(sum, truthSum) > 0.05 {
		t.Fatalf("3-way wander SUM = %v, truth %v", sum, truthSum)
	}
	// The exact sampler agrees with enumeration on the 3-way chain too.
	u := NewUniformEstimator(c)
	for i := 0; i < 30000; i++ {
		u.Step(rg)
	}
	est, _ := u.Sum(0.95)
	if stats.RelativeError(est, truthSum) > 0.05 {
		t.Fatalf("3-way uniform SUM = %v, truth %v", est, truthSum)
	}
}

func TestUniformEstimator(t *testing.T) {
	r, s := skewedPair()
	c := mustChain(t, r, s)
	truth, truthSum := c.ExactAggregates()
	u := NewUniformEstimator(c)
	rg := rng.New(7)
	for i := 0; i < 20000; i++ {
		u.Step(rg)
	}
	sum, ci := u.Sum(0.95)
	if math.Abs(sum-truthSum) > 4*ci {
		t.Fatalf("uniform SUM = %v ± %v, truth %v", sum, ci, truthSum)
	}
	avg, _ := u.Avg(0.95)
	if stats.RelativeError(avg, truthSum/truth) > 0.05 {
		t.Fatalf("uniform AVG = %v, truth %v", avg, truthSum/truth)
	}
}

func TestRippleConvergesToExact(t *testing.T) {
	r, s := skewedPair()
	rp, err := NewRipple(r, s, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	truth, truthSum := mustChain(t, r, s).ExactAggregates()
	for !rp.Done() {
		rp.Step()
	}
	if rp.CountEstimate() != truth {
		t.Fatalf("final ripple COUNT = %v, want %v", rp.CountEstimate(), truth)
	}
	// Ripple aggregates r.Value + s.Value; recompute that ground truth.
	c := mustChain(t, r, s)
	wantSum := 0.0
	c.Enumerate(func(p []int) {
		wantSum += c.Rels[0].Tuples[p[0]].Value + c.Rels[1].Tuples[p[1]].Value
	})
	if math.Abs(rp.SumEstimate()-wantSum) > 1e-9 {
		t.Fatalf("final ripple SUM = %v, want %v", rp.SumEstimate(), wantSum)
	}
	_ = truthSum
}

func TestRippleMidwayEstimate(t *testing.T) {
	r, s := skewedPair()
	rp, err := NewRipple(r, s, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	c := mustChain(t, r, s)
	truth := c.JoinCount()
	// Consume half the inputs.
	for rp.Steps() < (r.Len()+s.Len())/2 {
		rp.Step()
	}
	est := rp.CountEstimate()
	if est <= 0 {
		t.Fatal("midway estimate is zero")
	}
	if stats.RelativeError(est, truth) > 0.8 {
		t.Fatalf("midway ripple COUNT = %v, truth %v (error too large)", est, truth)
	}
	avg, ci := rp.AvgEstimate(0.95)
	if math.IsNaN(avg) || ci <= 0 {
		t.Fatalf("AvgEstimate = %v ± %v", avg, ci)
	}
}

func TestRippleErrors(t *testing.T) {
	r, _ := skewedPair()
	if _, err := NewRipple(NewRelation("E", nil), r, rng.New(1)); err == nil {
		t.Fatal("empty relation accepted")
	}
}

func TestFromDataset(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Categorical},
		dataset.Attribute{Name: "income", Kind: dataset.Numeric},
	))
	d.MustAppendRow(dataset.Cat("a"), dataset.Num(10))
	d.MustAppendRow(dataset.Cat("b"), dataset.Num(20))
	d.MustAppendRow(dataset.Cat("a"), dataset.Num(30))
	d.MustAppendRow(dataset.NullValue(dataset.Categorical), dataset.Num(40))

	rel, err := FromDataset(d, "T", "zip", "", "income")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("relation has %d tuples, want 3 (null key skipped)", rel.Len())
	}
	if rel.MaxLeftFrequency() != 2 {
		t.Fatalf("MaxLeftFrequency = %d", rel.MaxLeftFrequency())
	}
	if _, err := FromDataset(d, "T", "", "", "income"); err == nil {
		t.Fatal("no join attribute accepted")
	}
}

func TestPathKey(t *testing.T) {
	if PathKey([]int{1, 23, 0}) != "1:23:0" {
		t.Fatalf("PathKey = %q", PathKey([]int{1, 23, 0}))
	}
}
