package joinsample

import (
	"errors"

	"redi/internal/rng"
)

// Chain is a prepared multi-way chain join R1 ⋈ R2 ⋈ ... ⋈ Rn with exact
// completion weights: weights[i][t] counts the join results that extend
// tuple t of relation i through the rest of the chain. The weights are the
// exact-frequency instantiation of the generalized sampling framework of
// Zhao et al. (SIGMOD 2018) and enable exactly uniform, independent
// sampling from the join result without materializing it.
type Chain struct {
	Rels    []*Relation
	weights [][]float64
	rootCat *rng.Categorical
	total   float64
}

// NewChain prepares the chain. It returns an error if no relations are
// given. A chain whose join result is empty is valid; samplers report it.
func NewChain(rels ...*Relation) (*Chain, error) {
	if len(rels) == 0 {
		return nil, errors.New("joinsample: empty chain")
	}
	c := &Chain{Rels: rels, weights: make([][]float64, len(rels))}
	n := len(rels)
	// Backward DP: last relation's tuples each complete exactly one
	// result.
	c.weights[n-1] = make([]float64, rels[n-1].Len())
	for i := range c.weights[n-1] {
		c.weights[n-1][i] = 1
	}
	for i := n - 2; i >= 0; i-- {
		c.weights[i] = make([]float64, rels[i].Len())
		next := rels[i+1]
		for t, tup := range rels[i].Tuples {
			w := 0.0
			for _, j := range next.MatchLeft(tup.Right) {
				w += c.weights[i+1][j]
			}
			c.weights[i][t] = w
		}
	}
	for _, w := range c.weights[0] {
		c.total += w
	}
	if c.total > 0 {
		c.rootCat = rng.NewCategorical(c.weights[0])
	}
	return c, nil
}

// JoinCount returns the exact size of the join result.
func (c *Chain) JoinCount() float64 { return c.total }

// ExactSample draws one join result uniformly at random, independent of all
// other draws: the first tuple is drawn proportional to its completion
// weight, each subsequent tuple proportional to its own weight among the
// tuples matching the prefix. ok is false when the join is empty.
func (c *Chain) ExactSample(r *rng.RNG) (path []int, ok bool) {
	if c.total == 0 {
		return nil, false
	}
	path = make([]int, len(c.Rels))
	path[0] = c.rootCat.Draw(r)
	for i := 1; i < len(c.Rels); i++ {
		prev := c.Rels[i-1].Tuples[path[i-1]]
		matches := c.Rels[i].MatchLeft(prev.Right)
		// Weighted choice among matches by completion weight. Linear
		// scan: match lists are short in practice; hot paths can
		// pre-build per-key alias tables.
		total := 0.0
		for _, j := range matches {
			total += c.weights[i][j]
		}
		x := r.Float64() * total
		pick := matches[len(matches)-1]
		for _, j := range matches {
			x -= c.weights[i][j]
			if x <= 0 {
				pick = j
				break
			}
		}
		path[i] = pick
	}
	return path, true
}

// WanderSample performs one wander-join random walk: a uniform tuple from
// R1, then a uniform tuple among matches in R2, and so on. The walk fails
// (ok=false) when a prefix has no continuation. On success, invProb is the
// reciprocal of the path's sampling probability — the Horvitz–Thompson
// weight that makes estimates over walks unbiased despite the non-uniform
// path distribution.
func (c *Chain) WanderSample(r *rng.RNG) (path []int, invProb float64, ok bool) {
	path = make([]int, len(c.Rels))
	invProb = float64(c.Rels[0].Len())
	path[0] = r.Intn(c.Rels[0].Len())
	for i := 1; i < len(c.Rels); i++ {
		prev := c.Rels[i-1].Tuples[path[i-1]]
		matches := c.Rels[i].MatchLeft(prev.Right)
		if len(matches) == 0 {
			return nil, 0, false
		}
		invProb *= float64(len(matches))
		path[i] = matches[r.Intn(len(matches))]
	}
	return path, invProb, true
}

// NaiveSample is the biased baseline the accept/reject sampler corrects: a
// uniform tuple from R1, then a uniform match in each subsequent relation,
// accepted unconditionally. Paths through high-fanout keys are
// under-sampled relative to their share of the join result. ok is false
// when the walk dead-ends.
func (c *Chain) NaiveSample(r *rng.RNG) (path []int, ok bool) {
	p, _, ok := c.WanderSample(r)
	return p, ok
}

// Enumerate visits every join result (one tuple index per relation) in
// deterministic order. Intended for ground truth on small inputs; the
// result size is JoinCount.
func (c *Chain) Enumerate(visit func(path []int)) {
	path := make([]int, len(c.Rels))
	var walk func(i int)
	walk = func(i int) {
		if i == len(c.Rels) {
			visit(path)
			return
		}
		if i == 0 {
			for t := range c.Rels[0].Tuples {
				path[0] = t
				walk(1)
			}
			return
		}
		prev := c.Rels[i-1].Tuples[path[i-1]]
		for _, j := range c.Rels[i].MatchLeft(prev.Right) {
			path[i] = j
			walk(i + 1)
		}
	}
	walk(0)
}

// PathValue sums the tuple values along a path — the default aggregate
// input f(result) used by the estimators.
func (c *Chain) PathValue(path []int) float64 {
	v := 0.0
	for i, t := range path {
		v += c.Rels[i].Tuples[t].Value
	}
	return v
}

// ExactAggregates computes the exact COUNT and SUM(PathValue) of the join
// by enumeration. Suitable for ground truth on small-to-medium joins.
func (c *Chain) ExactAggregates() (count, sum float64) {
	c.Enumerate(func(path []int) {
		count++
		sum += c.PathValue(path)
	})
	return count, sum
}
