package joinsample

import (
	"errors"

	"redi/internal/rng"
	"redi/internal/stats"
)

// Cycle is a cyclic chain join: R1 ⋈ R2 ⋈ ... ⋈ Rn with the additional
// closing predicate Rn.Right = R1.Left (e.g. the triangle query). The
// generalized sampling framework of Zhao et al. (SIGMOD 2018) handles
// cycles by sampling from the spanning chain and rejecting paths that fail
// the closing predicate; wander-join style estimates weight accepted walks
// by their chain inclusion probability.
type Cycle struct {
	Chain *Chain
}

// NewCycle wraps a prepared chain whose closing predicate is
// last.Right == first.Left.
func NewCycle(c *Chain) (*Cycle, error) {
	if len(c.Rels) < 2 {
		return nil, errors.New("joinsample: a cycle needs at least two relations")
	}
	return &Cycle{Chain: c}, nil
}

// closes reports whether a chain path satisfies the closing predicate.
func (cy *Cycle) closes(path []int) bool {
	first := cy.Chain.Rels[0].Tuples[path[0]]
	last := cy.Chain.Rels[len(cy.Chain.Rels)-1].Tuples[path[len(path)-1]]
	return last.Right == first.Left
}

// Enumerate visits every cyclic join result.
func (cy *Cycle) Enumerate(visit func(path []int)) {
	cy.Chain.Enumerate(func(path []int) {
		if cy.closes(path) {
			visit(path)
		}
	})
}

// ExactAggregates computes the exact COUNT and SUM(PathValue) of the
// cyclic join by enumeration.
func (cy *Cycle) ExactAggregates() (count, sum float64) {
	cy.Enumerate(func(path []int) {
		count++
		sum += cy.Chain.PathValue(path)
	})
	return count, sum
}

// Sample draws one cyclic join result uniformly at random via
// chain-sample-then-reject: chain results are uniform, so the accepted
// subset is uniform over the cycle's results. ok is false on rejection;
// callers loop. attempts out of SampleN reports the rejection cost.
func (cy *Cycle) Sample(r *rng.RNG) (path []int, ok bool) {
	p, ok := cy.Chain.ExactSample(r)
	if !ok || !cy.closes(p) {
		return nil, false
	}
	return p, true
}

// SampleN draws n accepted cyclic samples, reporting total attempts. It
// gives up (returning what it has) if the acceptance rate is pathological.
func (cy *Cycle) SampleN(r *rng.RNG, n int) (paths [][]int, attempts int) {
	for len(paths) < n {
		attempts++
		if p, ok := cy.Sample(r); ok {
			paths = append(paths, p)
		}
		if attempts > 1000*(n+1000) {
			return paths, attempts
		}
	}
	return paths, attempts
}

// CyclicWanderEstimator estimates COUNT and SUM over the cyclic join with
// wander-join walks on the spanning chain: a walk that closes contributes
// its Horvitz–Thompson weight, a walk that fails or does not close
// contributes zero, keeping the estimator unbiased for the cycle.
type CyclicWanderEstimator struct {
	Cycle *Cycle
	count stats.Estimator
	sum   stats.Estimator
}

// NewCyclicWanderEstimator wraps a cycle.
func NewCyclicWanderEstimator(cy *Cycle) *CyclicWanderEstimator {
	return &CyclicWanderEstimator{Cycle: cy}
}

// Step performs one walk.
func (w *CyclicWanderEstimator) Step(r *rng.RNG) {
	path, invProb, ok := w.Cycle.Chain.WanderSample(r)
	if !ok || !w.Cycle.closes(path) {
		w.count.Add(0)
		w.sum.Add(0)
		return
	}
	w.count.Add(invProb)
	w.sum.Add(invProb * w.Cycle.Chain.PathValue(path))
}

// Count returns the running COUNT estimate and CI half-width.
func (w *CyclicWanderEstimator) Count(level float64) (est, ci float64) {
	return w.count.Mean(), w.count.CI(level)
}

// Sum returns the running SUM estimate and CI half-width.
func (w *CyclicWanderEstimator) Sum(level float64) (est, ci float64) {
	return w.sum.Mean(), w.sum.CI(level)
}

// Steps returns the number of walks performed.
func (w *CyclicWanderEstimator) Steps() float64 { return w.count.N() }
