package joinsample

import (
	"testing"

	"redi/internal/rng"
	"redi/internal/stats"
)

// triangle builds a triangle query R(a,b) ⋈ S(b,c) ⋈ T(c,a) over a small
// random graph: each relation holds edges, the cycle closes when T's right
// endpoint equals R's left endpoint.
func triangle(t *testing.T, nodes, edges int, seed uint64) *Cycle {
	t.Helper()
	r := rng.New(seed)
	mk := func(name string) *Relation {
		var tuples []Tuple
		for i := 0; i < edges; i++ {
			tuples = append(tuples, Tuple{
				Left:  int64(r.Intn(nodes)),
				Right: int64(r.Intn(nodes)),
				Value: 1 + r.Float64(),
			})
		}
		return NewRelation(name, tuples)
	}
	c, err := NewChain(mk("R"), mk("S"), mk("T"))
	if err != nil {
		t.Fatal(err)
	}
	cy, err := NewCycle(c)
	if err != nil {
		t.Fatal(err)
	}
	return cy
}

func TestCycleEnumerateClosesOnly(t *testing.T) {
	cy := triangle(t, 6, 40, 1)
	count, _ := cy.ExactAggregates()
	if count == 0 {
		t.Skip("no triangles in this draw")
	}
	cy.Enumerate(func(path []int) {
		if !cy.closes(path) {
			t.Fatal("enumerated a non-closing path")
		}
	})
	// Cycle count must be at most the chain count.
	if count > cy.Chain.JoinCount() {
		t.Fatalf("cycle count %v exceeds chain count %v", count, cy.Chain.JoinCount())
	}
}

func TestCycleSampleUniform(t *testing.T) {
	cy := triangle(t, 5, 30, 2)
	truth, _ := cy.ExactAggregates()
	if truth < 3 {
		t.Skip("too few triangles in this draw")
	}
	r := rng.New(3)
	paths, attempts := cy.SampleN(r, 20000)
	if len(paths) != 20000 {
		t.Fatalf("accepted %d samples in %d attempts", len(paths), attempts)
	}
	counts := map[string]float64{}
	for _, p := range paths {
		counts[PathKey(p)]++
	}
	if float64(len(counts)) != truth {
		t.Fatalf("observed %d distinct results, want %v", len(counts), truth)
	}
	emp := make([]float64, 0, len(counts))
	uni := make([]float64, 0, len(counts))
	for _, v := range counts {
		emp = append(emp, v/20000)
		uni = append(uni, 1/truth)
	}
	if tv := stats.TotalVariation(emp, uni); tv > 0.05 {
		t.Fatalf("cyclic sampler TV from uniform = %v", tv)
	}
}

func TestCyclicWanderUnbiased(t *testing.T) {
	cy := triangle(t, 5, 30, 4)
	truth, truthSum := cy.ExactAggregates()
	if truth < 3 {
		t.Skip("too few triangles in this draw")
	}
	w := NewCyclicWanderEstimator(cy)
	r := rng.New(5)
	for i := 0; i < 60000; i++ {
		w.Step(r)
	}
	count, _ := w.Count(0.95)
	if stats.RelativeError(count, truth) > 0.1 {
		t.Fatalf("cyclic wander COUNT = %v, truth %v", count, truth)
	}
	sum, _ := w.Sum(0.95)
	if stats.RelativeError(sum, truthSum) > 0.1 {
		t.Fatalf("cyclic wander SUM = %v, truth %v", sum, truthSum)
	}
	if w.Steps() != 60000 {
		t.Fatalf("Steps = %v", w.Steps())
	}
}

func TestCycleValidation(t *testing.T) {
	c, err := NewChain(NewRelation("R", []Tuple{{Left: 0, Right: 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCycle(c); err == nil {
		t.Fatal("single-relation cycle accepted")
	}
}

func TestCycleNoTriangles(t *testing.T) {
	// R maps 0->1, S maps 1->2, T maps 2->9: never closes.
	c, err := NewChain(
		NewRelation("R", []Tuple{{Left: 0, Right: 1}}),
		NewRelation("S", []Tuple{{Left: 1, Right: 2}}),
		NewRelation("T", []Tuple{{Left: 2, Right: 9}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := NewCycle(c)
	if err != nil {
		t.Fatal(err)
	}
	count, _ := cy.ExactAggregates()
	if count != 0 {
		t.Fatalf("count = %v", count)
	}
	paths, attempts := cy.SampleN(rng.New(6), 5)
	if len(paths) != 0 || attempts == 0 {
		t.Fatalf("sampled %d paths from empty cycle", len(paths))
	}
}
