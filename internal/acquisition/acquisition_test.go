package acquisition

import (
	"math"
	"testing"

	"redi/internal/rng"
)

func TestFitLearningCurve(t *testing.T) {
	// Exact power law loss = 2 n^-0.5.
	ns := []float64{10, 100, 1000, 10000}
	losses := make([]float64, len(ns))
	for i, n := range ns {
		losses[i] = 2 * math.Pow(n, -0.5)
	}
	c, err := FitLearningCurve(ns, losses)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.A-2) > 1e-6 || math.Abs(c.B-0.5) > 1e-6 {
		t.Fatalf("curve = %+v", c)
	}
	if math.Abs(c.Loss(400)-0.1) > 1e-9 {
		t.Fatalf("Loss(400) = %v", c.Loss(400))
	}
}

func TestFitLearningCurveErrors(t *testing.T) {
	if _, err := FitLearningCurve([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLearningCurve([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Rising curve clamps to flat.
	c, err := FitLearningCurve([]float64{10, 100}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if c.B != 0 {
		t.Fatalf("rising curve B = %v, want clamped 0", c.B)
	}
}

func TestUniformAllocate(t *testing.T) {
	a := UniformAllocate(3, 10)
	if a.Total() != 10 {
		t.Fatalf("total = %d", a.Total())
	}
	if a[0] != 4 || a[1] != 3 || a[2] != 3 {
		t.Fatalf("allocation = %v", a)
	}
	if UniformAllocate(0, 10).Total() != 0 {
		t.Fatal("zero slices should allocate nothing")
	}
}

func TestWaterfillingAllocate(t *testing.T) {
	a := WaterfillingAllocate([]int{100, 10, 10}, 60, 5)
	if a.Total() != 60 {
		t.Fatalf("total = %d", a.Total())
	}
	if a[0] != 0 {
		t.Fatalf("waterfilling fed the largest slice: %v", a)
	}
	if a[1]+a[2] != 60 || absInt(a[1]-a[2]) > 5 {
		t.Fatalf("allocation unbalanced: %v", a)
	}
}

func TestCurveAllocatePrefersImprovableSlice(t *testing.T) {
	curves := []LearningCurve{
		{A: 1, B: 0.5}, // steep: much to gain
		{A: 1, B: 0.0}, // flat: no gain
	}
	a := CurveAllocate(curves, []int{100, 100}, 50, 10, 0)
	if a[0] != 50 || a[1] != 0 {
		t.Fatalf("allocation = %v, want all to the steep slice", a)
	}
}

func TestCurveAllocateUnfairnessTerm(t *testing.T) {
	// Slice 1 has much higher current loss but a flat curve; lambda
	// pushes budget toward it anyway.
	curves := []LearningCurve{
		{A: 0.1, B: 0.3},
		{A: 5, B: 0.01},
	}
	fair := CurveAllocate(curves, []int{50, 50}, 40, 10, 10)
	if fair[1] == 0 {
		t.Fatalf("lambda ignored: %v", fair)
	}
}

func TestSubsetSizes(t *testing.T) {
	got := SubsetSizes(80, 4)
	want := []float64{10, 20, 40, 80}
	if len(got) != len(want) {
		t.Fatalf("SubsetSizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SubsetSizes = %v", got)
		}
	}
	if got := SubsetSizes(3, 4); len(got) != 2 || got[0] != 3/2 {
		// 3>>2 = 0 (skipped), 3>>1 = 1 (<2 skipped), 3>>0 = 3.
		if len(got) != 1 || got[0] != 3 {
			t.Fatalf("SubsetSizes(3,4) = %v", got)
		}
	}
}

func TestZeroOneLossAndMaxLoss(t *testing.T) {
	if l := ZeroOneLoss([]int{1, 0, 1}, []int{1, 1, 1}); math.Abs(l-1.0/3) > 1e-12 {
		t.Fatalf("loss = %v", l)
	}
	if ZeroOneLoss(nil, nil) != 0 {
		t.Fatal("empty loss")
	}
	if MaxLoss([]float64{0.1, 0.5, 0.2}) != 0.5 {
		t.Fatal("MaxLoss")
	}
}

// syntheticSlices builds a 2-slice classification pool where slice 1 is
// harder (noisier boundary), so equal loss needs more slice-1 data.
func syntheticSlices(n int, r *rng.RNG) (X [][]float64, y, slice []int) {
	for i := 0; i < n; i++ {
		sl := 0
		noise := 0.4
		if i%2 == 1 {
			sl = 1
			noise = 1.5
		}
		cls := r.Intn(2)
		mean := -1.0
		if cls == 1 {
			mean = 1
		}
		X = append(X, []float64{r.Normal(mean, noise), r.Normal(float64(sl), 0.5)})
		y = append(y, cls)
		slice = append(slice, sl)
	}
	return X, y, slice
}

func newSim(t *testing.T, seed uint64, initial []int) *SliceSim {
	t.Helper()
	r := rng.New(seed)
	px, py, ps := syntheticSlices(6000, r)
	tx, ty, ts := syntheticSlices(2000, r)
	sim, err := NewSliceSim(2, px, py, ps, tx, ty, ts, initial, r)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSliceSimBasics(t *testing.T) {
	sim := newSim(t, 1, []int{100, 100})
	sizes := sim.SliceSizes()
	if sizes[0] != 100 || sizes[1] != 100 {
		t.Fatalf("sizes = %v", sizes)
	}
	per, overall, err := sim.TrainAndEval(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if overall <= 0 || overall >= 0.5 {
		t.Fatalf("overall loss = %v", overall)
	}
	// Slice 1 is harder by construction.
	if per[1] <= per[0] {
		t.Fatalf("per-slice losses = %v, slice 1 should be harder", per)
	}
	sim.Acquire(Allocation{50, 150}, rng.New(3))
	sizes = sim.SliceSizes()
	if sizes[0] != 150 || sizes[1] != 250 {
		t.Fatalf("sizes after acquire = %v", sizes)
	}
}

func TestSliceSimValidation(t *testing.T) {
	r := rng.New(4)
	px, py, ps := syntheticSlices(100, r)
	tx, ty, ts := syntheticSlices(10, r)
	if _, err := NewSliceSim(2, px, py, ps, tx, ty, ts, []int{1000, 0}, r); err == nil {
		t.Fatal("oversized initial accepted")
	}
	bad := append([]int(nil), ps...)
	bad[0] = 9
	if _, err := NewSliceSim(2, px, py, bad, tx, ty, ts, []int{1, 1}, r); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
}

func TestCollectHistoryAndCurves(t *testing.T) {
	sim := newSim(t, 5, []int{400, 400})
	hist, err := sim.CollectHistory(4, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	curves := EstimateCurves(hist)
	if len(curves) != 2 {
		t.Fatalf("curves = %v", curves)
	}
	for sl, c := range curves {
		if c.A <= 0 {
			t.Fatalf("slice %d curve = %+v", sl, c)
		}
	}
}

func TestSliceTunerBeatsUniformOnMaxLoss(t *testing.T) {
	run := func(mk func(sim *SliceSim) Allocation, seed uint64) float64 {
		sim := newSim(t, seed, []int{600, 150})
		a := mk(sim)
		sim.Acquire(a, rng.New(seed+1))
		worst := 0.0
		const evals = 3
		for e := uint64(0); e < evals; e++ {
			per, _, err := sim.TrainAndEval(rng.New(seed + 2 + e))
			if err != nil {
				t.Fatal(err)
			}
			worst += MaxLoss(per)
		}
		return worst / evals
	}
	const budget = 900
	var tuner, uniform float64
	const trials = 3
	for s := uint64(0); s < trials; s++ {
		tuner += run(func(sim *SliceSim) Allocation {
			hist, err := sim.CollectHistory(4, rng.New(100+s))
			if err != nil {
				t.Fatal(err)
			}
			return CurveAllocate(EstimateCurves(hist), sim.SliceSizes(), budget, 50, 1)
		}, 10*s)
		uniform += run(func(*SliceSim) Allocation {
			return UniformAllocate(2, budget)
		}, 10*s)
	}
	if tuner > uniform*1.05 {
		t.Fatalf("SliceTuner max loss %v clearly worse than uniform %v", tuner/trials, uniform/trials)
	}
}

func TestProviderAndConsumer(t *testing.T) {
	r := rng.New(7)
	px, py, ps := syntheticSlices(4000, r)
	prov, err := NewProvider(2, px, py, ps)
	if err != nil {
		t.Fatal(err)
	}
	if prov.NumPredicates() != 2 {
		t.Fatal("predicates")
	}
	before := prov.Remaining(0)
	X, y := prov.Query(0, 10, r)
	if len(X) != 10 || len(y) != 10 {
		t.Fatalf("query returned %d", len(X))
	}
	if prov.Remaining(0) != before-10 {
		t.Fatal("sampling with replacement detected")
	}

	// Consumer seeded only with slice-0 data.
	var initX [][]float64
	var initY []int
	for i := range px {
		if ps[i] == 0 && len(initX) < 100 {
			initX = append(initX, px[i])
			initY = append(initY, py[i])
		}
	}
	vx, vy, _ := syntheticSlices(800, r)
	cons := NewConsumer(initX, initY, vx, vy, 2, 0.1)
	accs, err := MarketRun(prov, cons, 10, 40, cons.ChoosePredicate, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 10 {
		t.Fatalf("accs = %v", accs)
	}
	if accs[len(accs)-1] < 0.5 {
		t.Fatalf("final accuracy = %v", accs[len(accs)-1])
	}
}

func TestNoveltyGuidedPrefersUnseenPredicate(t *testing.T) {
	r := rng.New(9)
	px, py, ps := syntheticSlices(4000, r)
	prov, err := NewProvider(2, px, py, ps)
	if err != nil {
		t.Fatal(err)
	}
	var initX [][]float64
	var initY []int
	for i := range px {
		if ps[i] == 0 && len(initX) < 200 {
			initX = append(initX, px[i])
			initY = append(initY, py[i])
		}
	}
	vx, vy, _ := syntheticSlices(500, r)
	cons := NewConsumer(initX, initY, vx, vy, 2, 0)
	if _, err := MarketRun(prov, cons, 6, 30, cons.ChoosePredicate, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	// Predicate 1 (unseen slice) should have higher novelty and more
	// queries after the initial exploration.
	if cons.novelty[1] <= cons.novelty[0] {
		t.Fatalf("novelty = %v, predicate 1 should dominate", cons.novelty)
	}
	if cons.queries[1] <= cons.queries[0] {
		t.Fatalf("queries = %v, predicate 1 should dominate", cons.queries)
	}
}

func TestCrowdCollectorAdaptiveBeatsRandom(t *testing.T) {
	// 12 workers: 8 biased toward value 0, 4 covering the tail values.
	target := []float64{0.25, 0.25, 0.25, 0.25}
	mkWorkers := func() []*Worker {
		var ws []*Worker
		for i := 0; i < 8; i++ {
			ws = append(ws, NewWorker([]float64{0.85, 0.05, 0.05, 0.05}))
		}
		for i := 0; i < 4; i++ {
			ws = append(ws, NewWorker([]float64{0.04, 0.32, 0.32, 0.32}))
		}
		return ws
	}
	runKL := func(adaptive bool, seed uint64) float64 {
		c, err := NewCrowdCollector(mkWorkers(), target, 4)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		for round := 0; round < 50; round++ {
			if adaptive {
				c.AdaptiveRound(r)
			} else {
				c.RandomRound(r)
			}
		}
		if c.Total() != 200 {
			t.Fatalf("collected %v", c.Total())
		}
		return c.KL()
	}
	var adaptive, random float64
	for s := uint64(0); s < 5; s++ {
		adaptive += runKL(true, 20+s)
		random += runKL(false, 40+s)
	}
	if adaptive >= random {
		t.Fatalf("adaptive KL %v should beat random %v", adaptive/5, random/5)
	}
}

func TestBudgetedRoundRespectsBudget(t *testing.T) {
	target := []float64{0.25, 0.25, 0.25, 0.25}
	workers := []*Worker{
		NewWorker([]float64{0.85, 0.05, 0.05, 0.05}),
		NewWorker([]float64{0.05, 0.85, 0.05, 0.05}),
		NewWorker([]float64{0.05, 0.05, 0.85, 0.05}),
		NewWorker([]float64{0.05, 0.05, 0.05, 0.85}),
	}
	c, err := NewCrowdCollector(workers, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{1, 2, 3, 4}
	r := rng.New(50)
	spent := c.BudgetedRound(costs, 5, r)
	if spent > 5 {
		t.Fatalf("spent %v over budget 5", spent)
	}
	if c.Total() == 0 {
		t.Fatal("no entities collected")
	}
	// Many rounds under budget should still converge toward the target.
	for i := 0; i < 60; i++ {
		c.BudgetedRound(costs, 6, r)
	}
	if kl := c.KL(); kl > 0.2 {
		t.Fatalf("budgeted collection KL = %v", kl)
	}
}

func TestBudgetedRoundPanicsOnMismatch(t *testing.T) {
	c, err := NewCrowdCollector([]*Worker{NewWorker([]float64{1})}, []float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cost mismatch did not panic")
		}
	}()
	c.BudgetedRound([]float64{1, 2}, 5, rng.New(51))
}

func TestCrowdCollectorValidation(t *testing.T) {
	if _, err := NewCrowdCollector(nil, []float64{1}, 1); err == nil {
		t.Fatal("no workers accepted")
	}
	w := []*Worker{NewWorker([]float64{1})}
	if _, err := NewCrowdCollector(w, []float64{1}, 2); err == nil {
		t.Fatal("perRound > workers accepted")
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
