package acquisition

import (
	"errors"
	"math"
	"sort"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/fairness"
)

// This file implements problematic-slice identification (the first half of
// Tae & Whang's acquisition loop, tutorial §3.1: "identifying problematic
// slices and selectively acquiring the right amount of data for slices
// that cause bias"): search the pattern lattice over categorical attributes
// for slices where a model's loss significantly exceeds the overall loss.

// ProblemSlice is one discovered underperforming slice.
type ProblemSlice struct {
	// Pattern over the finder's attributes (see Describe).
	Pattern coverage.Pattern
	// Description renders the pattern with attribute names.
	Description string
	// N is the number of evaluated examples in the slice.
	N int
	// Loss is the slice's 0/1 loss; Gap is Loss − overall loss.
	Loss float64
	Gap  float64
	// Score is the effect size Gap·√N used for ranking, so large,
	// clearly-bad slices rank above tiny noisy ones.
	Score float64
}

// SliceFinderConfig parameterizes the search.
type SliceFinderConfig struct {
	// Attrs are the categorical attributes slices may constrain.
	Attrs []string
	// MinSize drops slices with fewer evaluated examples (default 30).
	MinSize int
	// MinGap drops slices whose loss exceeds the overall loss by less
	// than this (default 0.05).
	MinGap float64
	// TopK caps the result count (default 10).
	TopK int
}

// FindProblemSlices evaluates the model on d (restricted to the design's
// rows) and returns the worst slices, most severe first. Slices dominated
// by an equally-bad-or-worse generalization are suppressed, so the result
// is a set of maximal problem slices rather than a pile of near-duplicates.
func FindProblemSlices(m fairness.Model, des *fairness.Design, d *dataset.Dataset, cfg SliceFinderConfig) ([]ProblemSlice, error) {
	if len(cfg.Attrs) == 0 {
		return nil, errors.New("acquisition: slice finder needs attributes")
	}
	if cfg.MinSize == 0 {
		cfg.MinSize = 30
	}
	if cfg.MinGap == 0 {
		cfg.MinGap = 0.05
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	// Evaluate once; wrong[i] for each design example, plus its coded
	// slice attributes.
	space := coverage.NewSpace(d, cfg.Attrs, 1)
	codes := make([][]int, len(des.Rows))
	wrong := make([]float64, len(des.Rows))
	totalWrong := 0.0
	cols := make([][]int32, len(cfg.Attrs))
	for i, a := range cfg.Attrs {
		cols[i], _ = d.Codes(a)
	}
	for i, row := range des.Rows {
		rc := make([]int, len(cfg.Attrs))
		for j := range cfg.Attrs {
			rc[j] = int(cols[j][row])
		}
		codes[i] = rc
		if m.Predict(des.X[i]) != des.Y[i] {
			wrong[i] = 1
			totalWrong++
		}
	}
	if len(des.Rows) == 0 {
		return nil, errors.New("acquisition: empty design")
	}
	overall := totalWrong / float64(len(des.Rows))

	// Scan the lattice breadth-first from the root's children; memoize
	// per-pattern loss. The lattice over a handful of sensitive
	// attributes is small, so a full scan is exact.
	var all []ProblemSlice
	var scan func(p coverage.Pattern)
	scan = func(p coverage.Pattern) {
		n, w := 0, 0.0
		for i, rc := range codes {
			if p.Matches(rc) {
				n++
				w += wrong[i]
			}
		}
		if n < cfg.MinSize {
			return // children are smaller still
		}
		loss := w / float64(n)
		gap := loss - overall
		if gap >= cfg.MinGap {
			all = append(all, ProblemSlice{
				Pattern:     p.Clone(),
				Description: space.Describe(p),
				N:           n,
				Loss:        loss,
				Gap:         gap,
				Score:       gap * math.Sqrt(float64(n)),
			})
		}
		for _, c := range space.Children(p) {
			scan(c)
		}
	}
	for _, c := range space.Children(space.Root()) {
		scan(c)
	}

	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].Description < all[b].Description
	})
	// Suppress slices dominated by an already-kept generalization that
	// is at least as bad.
	var out []ProblemSlice
	for _, s := range all {
		dominated := false
		for _, kept := range out {
			if kept.Pattern.Dominates(s.Pattern) && kept.Loss >= s.Loss-1e-9 {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
		if len(out) == cfg.TopK {
			break
		}
	}
	return out, nil
}
