// Package acquisition implements the selective data-collection strategies
// surveyed in §3.1 and §4 of the tutorial: Slice Tuner's learning-curve
// driven acquisition (Tae & Whang, SIGMOD 2021), data-market acquisition
// with novelty-guided predicate exploration (Li, Yu, Koudas, VLDB 2021),
// and distribution-aware crowdsourced entity collection with adaptive
// worker selection (Fan et al., TKDE 2019).
package acquisition

import (
	"errors"
	"math"

	"redi/internal/rng"
)

// LearningCurve is a power-law loss model loss(n) = A · n^(−B), the form
// Slice Tuner fits per slice.
type LearningCurve struct {
	A, B float64
}

// FitLearningCurve fits the power law to (n, loss) observations by least
// squares in log-log space. Points with non-positive n or loss are skipped.
// It returns an error with fewer than two usable points.
func FitLearningCurve(ns []float64, losses []float64) (LearningCurve, error) {
	if len(ns) != len(losses) {
		return LearningCurve{}, errors.New("acquisition: curve input length mismatch")
	}
	var xs, ys []float64
	for i := range ns {
		if ns[i] > 0 && losses[i] > 0 {
			xs = append(xs, math.Log(ns[i]))
			ys = append(ys, math.Log(losses[i]))
		}
	}
	if len(xs) < 2 {
		return LearningCurve{}, errors.New("acquisition: need at least two curve points")
	}
	// Least squares y = a + b x.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LearningCurve{}, errors.New("acquisition: degenerate curve points")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	curve := LearningCurve{A: math.Exp(a), B: -b}
	if curve.B < 0 {
		// A rising "learning" curve is noise; clamp to flat so the
		// allocator treats the slice as not improvable.
		curve.B = 0
	}
	return curve, nil
}

// Loss predicts the loss at n examples.
func (c LearningCurve) Loss(n float64) float64 {
	if n <= 0 {
		return c.A
	}
	return c.A * math.Pow(n, -c.B)
}

// Allocation is the number of new examples to acquire per slice.
type Allocation []int

// Total returns the allocated example count.
func (a Allocation) Total() int {
	t := 0
	for _, n := range a {
		t += n
	}
	return t
}

// UniformAllocate splits the budget evenly across slices (remainder to the
// first slices) — the baseline Slice Tuner is compared against.
func UniformAllocate(numSlices, budget int) Allocation {
	a := make(Allocation, numSlices)
	if numSlices == 0 {
		return a
	}
	for i := range a {
		a[i] = budget / numSlices
	}
	for i := 0; i < budget%numSlices; i++ {
		a[i]++
	}
	return a
}

// WaterfillingAllocate repeatedly gives chunks to the slice that currently
// has the fewest examples, equalizing slice sizes — the second baseline.
func WaterfillingAllocate(current []int, budget, chunk int) Allocation {
	a := make(Allocation, len(current))
	sizes := append([]int(nil), current...)
	if chunk <= 0 {
		chunk = 1
	}
	for spent := 0; spent < budget; {
		min := 0
		for i, s := range sizes {
			if s < sizes[min] {
				min = i
			}
		}
		take := chunk
		if spent+take > budget {
			take = budget - spent
		}
		a[min] += take
		sizes[min] += take
		spent += take
	}
	return a
}

// CurveAllocate is Slice Tuner's allocator: given fitted per-slice curves
// and current sizes, it assigns the budget in chunks, each to the slice
// with the highest predicted marginal loss reduction, weighted by Lambda
// times the slice's imbalance (how far its predicted loss sits above the
// mean) — the paper's joint loss/unfairness objective.
func CurveAllocate(curves []LearningCurve, current []int, budget, chunk int, lambda float64) Allocation {
	a := make(Allocation, len(curves))
	if len(curves) == 0 {
		return a
	}
	sizes := make([]float64, len(current))
	for i, c := range current {
		sizes[i] = float64(c)
	}
	if chunk <= 0 {
		chunk = 1
	}
	for spent := 0; spent < budget; {
		take := chunk
		if spent+take > budget {
			take = budget - spent
		}
		// Mean predicted loss for the unfairness term.
		mean := 0.0
		for i, c := range curves {
			mean += c.Loss(sizes[i])
		}
		mean /= float64(len(curves))

		best, bestGain := 0, math.Inf(-1)
		for i, c := range curves {
			now := c.Loss(sizes[i])
			after := c.Loss(sizes[i] + float64(take))
			gain := now - after
			if excess := now - mean; excess > 0 {
				gain += lambda * excess
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		a[best] += take
		sizes[best] += float64(take)
		spent += take
	}
	return a
}

// EstimateCurves fits one learning curve per slice from observed
// (size, loss) histories. Slices whose history cannot be fitted get a flat
// curve at their last observed loss (never allocated to by CurveAllocate
// unless imbalanced).
func EstimateCurves(history [][]CurvePoint) []LearningCurve {
	out := make([]LearningCurve, len(history))
	for i, pts := range history {
		ns := make([]float64, len(pts))
		ls := make([]float64, len(pts))
		for j, p := range pts {
			ns[j] = p.N
			ls[j] = p.Loss
		}
		c, err := FitLearningCurve(ns, ls)
		if err != nil {
			last := 1.0
			if len(pts) > 0 {
				last = pts[len(pts)-1].Loss
			}
			c = LearningCurve{A: last, B: 0}
		}
		out[i] = c
	}
	return out
}

// CurvePoint is one observation of a slice's loss at a training-set size.
type CurvePoint struct {
	N    float64
	Loss float64
}

// SubsetSizes returns the geometric grid of training sizes Slice Tuner
// probes to fit curves: fractions 1/2^(levels-1) ... 1/2, 1 of n, deduped
// and >= 2.
func SubsetSizes(n, levels int) []float64 {
	var out []float64
	seen := map[int]bool{}
	for l := levels - 1; l >= 0; l-- {
		s := n >> uint(l)
		if s >= 2 && !seen[s] {
			seen[s] = true
			out = append(out, float64(s))
		}
	}
	return out
}

// ZeroOneLoss is the error rate of predictions against labels, the loss
// the experiments track per slice.
func ZeroOneLoss(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	wrong := 0
	for i := range pred {
		if pred[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(pred))
}

// maxLoss returns the largest per-slice loss, Slice Tuner's fairness
// criterion ("maximum slice loss").
func MaxLoss(losses []float64) float64 {
	m := 0.0
	for _, l := range losses {
		if l > m {
			m = l
		}
	}
	return m
}

// reservoirDraw removes and returns up to n random items from pool.
func reservoirDraw(pool *[]int, n int, r *rng.RNG) []int {
	if n > len(*pool) {
		n = len(*pool)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		j := r.Intn(len(*pool))
		out = append(out, (*pool)[j])
		(*pool)[j] = (*pool)[len(*pool)-1]
		*pool = (*pool)[:len(*pool)-1]
	}
	return out
}
