package acquisition

import (
	"errors"
	"math"

	"redi/internal/fairness"
	"redi/internal/rng"
)

// Provider simulates a data-market provider (Li, Yu, Koudas, VLDB 2021):
// it holds a hidden pool of labeled examples and answers predicate queries
// with random samples without replacement. The consumer never sees the
// pool, only query results.
type Provider struct {
	X     [][]float64
	Y     []int
	Pred  []int   // predicate id of each example
	pools [][]int // per-predicate remaining indices
}

// NewProvider builds a provider whose examples are partitioned into
// numPredicates disjoint query predicates (e.g. demographic slices or
// filter ranges).
func NewProvider(numPredicates int, X [][]float64, y, pred []int) (*Provider, error) {
	if len(X) != len(y) || len(X) != len(pred) {
		return nil, errors.New("acquisition: provider input length mismatch")
	}
	p := &Provider{X: X, Y: y, Pred: pred, pools: make([][]int, numPredicates)}
	for i, q := range pred {
		if q < 0 || q >= numPredicates {
			return nil, errors.New("acquisition: predicate id out of range")
		}
		p.pools[q] = append(p.pools[q], i)
	}
	return p, nil
}

// NumPredicates returns the number of queryable predicates.
func (p *Provider) NumPredicates() int { return len(p.pools) }

// Remaining returns how many examples predicate q can still return.
func (p *Provider) Remaining(q int) int { return len(p.pools[q]) }

// Query returns up to n examples matching predicate q, sampled without
// replacement.
func (p *Provider) Query(q, n int, r *rng.RNG) (X [][]float64, y []int) {
	idx := reservoirDraw(&p.pools[q], n, r)
	for _, i := range idx {
		X = append(X, p.X[i])
		y = append(y, p.Y[i])
	}
	return X, y
}

// Consumer runs the acquisition loop: it owns training data, a validation
// set, and a per-predicate utility estimate based on novelty — the mean
// distance of a query's returned batch from the consumer's current data
// centroid, the proxy Li et al. use for anticipated accuracy improvement.
type Consumer struct {
	TrainX [][]float64
	TrainY []int
	ValX   [][]float64
	ValY   []int

	Eps float64 // exploration rate for predicate choice

	novelty   []float64 // running mean novelty per predicate
	queries   []float64 // queries issued per predicate
	centroid  []float64
	nCentroid float64
}

// NewConsumer starts a consumer with initial (possibly unrepresentative)
// training data and a validation set.
func NewConsumer(trainX [][]float64, trainY []int, valX [][]float64, valY []int, numPredicates int, eps float64) *Consumer {
	c := &Consumer{
		TrainX:  trainX,
		TrainY:  trainY,
		ValX:    valX,
		ValY:    valY,
		Eps:     eps,
		novelty: make([]float64, numPredicates),
		queries: make([]float64, numPredicates),
	}
	if len(trainX) > 0 {
		c.centroid = make([]float64, len(trainX[0]))
		for _, x := range trainX {
			c.absorb(x)
		}
	}
	return c
}

func (c *Consumer) absorb(x []float64) {
	c.nCentroid++
	for j, v := range x {
		c.centroid[j] += (v - c.centroid[j]) / c.nCentroid
	}
}

func (c *Consumer) distance(x []float64) float64 {
	s := 0.0
	for j, v := range x {
		d := v - c.centroid[j]
		s += d * d
	}
	return math.Sqrt(s)
}

// ChoosePredicate picks the next predicate: with probability Eps a uniform
// exploration, otherwise the predicate with the highest mean novelty
// (unqueried predicates first).
func (c *Consumer) ChoosePredicate(r *rng.RNG) int {
	if r.Bool(c.Eps) {
		return r.Intn(len(c.novelty))
	}
	for q, n := range c.queries {
		if n == 0 {
			return q
		}
	}
	best := 0
	for q := range c.novelty {
		if c.novelty[q] > c.novelty[best] {
			best = q
		}
	}
	return best
}

// Absorb folds a query result into the training data and updates the
// predicate's novelty estimate.
func (c *Consumer) Absorb(q int, X [][]float64, y []int) {
	batchNovelty := 0.0
	for _, x := range X {
		batchNovelty += c.distance(x)
	}
	if len(X) > 0 {
		batchNovelty /= float64(len(X))
	}
	c.queries[q]++
	c.novelty[q] += (batchNovelty - c.novelty[q]) / c.queries[q]
	for i, x := range X {
		c.TrainX = append(c.TrainX, x)
		c.TrainY = append(c.TrainY, y[i])
		c.absorb(x)
	}
}

// Accuracy trains a logistic model on the current training data and
// returns validation accuracy.
func (c *Consumer) Accuracy(r *rng.RNG) (float64, error) {
	m, err := fairness.TrainLogistic(c.TrainX, c.TrainY, nil, fairness.LogisticConfig{Epochs: 20}, r)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, x := range c.ValX {
		if m.Predict(x) == c.ValY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(c.ValX)), nil
}

// MarketRun executes rounds of acquisition with batch size per query and
// returns validation accuracy after each round. choose selects the
// predicate per round; use Consumer.ChoosePredicate for the novelty-guided
// strategy or a closure over rng for the random baseline.
func MarketRun(p *Provider, c *Consumer, rounds, batch int, choose func(r *rng.RNG) int, r *rng.RNG) ([]float64, error) {
	accs := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		q := choose(r)
		X, y := p.Query(q, batch, r)
		c.Absorb(q, X, y)
		acc, err := c.Accuracy(r)
		if err != nil {
			return accs, err
		}
		accs = append(accs, acc)
	}
	return accs, nil
}
