package acquisition

import (
	"errors"

	"redi/internal/fairness"
	"redi/internal/rng"
)

// SliceSim simulates selective data acquisition for model fairness
// (experiment E9): a labeled example pool partitioned into slices
// (demographic groups), a training set that grows as allocations are
// executed, and a fixed test set evaluated per slice.
type SliceSim struct {
	NumSlices int

	poolX     [][]float64
	poolY     []int
	poolSlice []int
	pools     [][]int // per-slice indices still acquirable

	trainIdx []int

	testX     [][]float64
	testY     []int
	testSlice []int
}

// NewSliceSim builds a simulator from pool and test examples with slice
// labels in [0, numSlices). initial gives the number of starting training
// examples drawn from each slice's pool. It returns an error if a slice's
// pool cannot cover its initial size.
func NewSliceSim(numSlices int, poolX [][]float64, poolY, poolSlice []int,
	testX [][]float64, testY, testSlice []int, initial []int, r *rng.RNG) (*SliceSim, error) {
	s := &SliceSim{
		NumSlices: numSlices,
		poolX:     poolX,
		poolY:     poolY,
		poolSlice: poolSlice,
		pools:     make([][]int, numSlices),
		testX:     testX,
		testY:     testY,
		testSlice: testSlice,
	}
	for i, sl := range poolSlice {
		if sl < 0 || sl >= numSlices {
			return nil, errors.New("acquisition: pool slice out of range")
		}
		s.pools[sl] = append(s.pools[sl], i)
	}
	for sl, n := range initial {
		if n > len(s.pools[sl]) {
			return nil, errors.New("acquisition: initial size exceeds slice pool")
		}
		s.trainIdx = append(s.trainIdx, reservoirDraw(&s.pools[sl], n, r)...)
	}
	return s, nil
}

// SliceSizes returns the current per-slice training counts.
func (s *SliceSim) SliceSizes() []int {
	out := make([]int, s.NumSlices)
	for _, i := range s.trainIdx {
		out[s.poolSlice[i]]++
	}
	return out
}

// PoolSizes returns the per-slice counts still acquirable.
func (s *SliceSim) PoolSizes() []int {
	out := make([]int, s.NumSlices)
	for sl := range s.pools {
		out[sl] = len(s.pools[sl])
	}
	return out
}

// Acquire executes an allocation, drawing new examples from the slice
// pools (clamped to availability).
func (s *SliceSim) Acquire(a Allocation, r *rng.RNG) {
	for sl, n := range a {
		s.trainIdx = append(s.trainIdx, reservoirDraw(&s.pools[sl], n, r)...)
	}
}

// TrainAndEval trains a logistic model on the current training set and
// returns the per-slice 0/1 loss on the test set plus the overall loss.
func (s *SliceSim) TrainAndEval(r *rng.RNG) (perSlice []float64, overall float64, err error) {
	return s.evalSubset(s.trainIdx, r)
}

func (s *SliceSim) evalSubset(idx []int, r *rng.RNG) (perSlice []float64, overall float64, err error) {
	if len(idx) == 0 {
		return nil, 0, errors.New("acquisition: empty training set")
	}
	X := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, j := range idx {
		X[i] = s.poolX[j]
		y[i] = s.poolY[j]
	}
	m, err := fairness.TrainLogistic(X, y, nil, fairness.LogisticConfig{Epochs: 20}, r)
	if err != nil {
		return nil, 0, err
	}
	wrong := make([]float64, s.NumSlices)
	n := make([]float64, s.NumSlices)
	totalWrong := 0.0
	for i, x := range s.testX {
		pred := m.Predict(x)
		sl := s.testSlice[i]
		n[sl]++
		if pred != s.testY[i] {
			wrong[sl]++
			totalWrong++
		}
	}
	perSlice = make([]float64, s.NumSlices)
	for sl := range perSlice {
		if n[sl] > 0 {
			perSlice[sl] = wrong[sl] / n[sl]
		}
	}
	return perSlice, totalWrong / float64(len(s.testX)), nil
}

// CollectHistory probes the learning curves: for each geometric subset
// level, it trains on a random subset of the current training data and
// records each slice's (slice-subset-size, slice-loss) point. levels is the
// number of halvings (e.g. 4 probes at n/8, n/4, n/2, n).
func (s *SliceSim) CollectHistory(levels int, r *rng.RNG) ([][]CurvePoint, error) {
	history := make([][]CurvePoint, s.NumSlices)
	total := len(s.trainIdx)
	for _, size := range SubsetSizes(total, levels) {
		// Random subset of the training set.
		perm := r.Perm(total)
		idx := make([]int, int(size))
		for i := range idx {
			idx[i] = s.trainIdx[perm[i]]
		}
		perSlice, _, err := s.evalSubset(idx, r)
		if err != nil {
			continue
		}
		counts := make([]float64, s.NumSlices)
		for _, j := range idx {
			counts[s.poolSlice[j]]++
		}
		for sl := 0; sl < s.NumSlices; sl++ {
			if counts[sl] >= 2 && perSlice[sl] > 0 {
				history[sl] = append(history[sl], CurvePoint{N: counts[sl], Loss: perSlice[sl]})
			}
		}
	}
	for sl := range history {
		if len(history[sl]) == 0 {
			return history, errors.New("acquisition: a slice produced no curve points")
		}
	}
	return history, nil
}
