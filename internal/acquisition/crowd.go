package acquisition

import (
	"errors"

	"redi/internal/rng"
	"redi/internal/stats"
)

// Worker is a simulated crowd worker with a hidden entity distribution over
// domain values (Fan et al., TKDE 2019): asked to contribute, the worker
// submits one entity drawn from that distribution.
type Worker struct {
	dist *rng.Categorical
}

// NewWorker creates a worker over the given (hidden) value weights.
func NewWorker(weights []float64) *Worker {
	return &Worker{dist: rng.NewCategorical(weights)}
}

// Submit draws one entity value index.
func (w *Worker) Submit(r *rng.RNG) int { return w.dist.Draw(r) }

// CrowdCollector runs distribution-aware crowdsourced entity collection:
// each round it selects PerRound workers, collects one entity from each,
// and tracks how far the collected distribution sits from the target
// (KL divergence with Laplace smoothing). The adaptive policy estimates
// each worker's distribution from their submission history and selects the
// workers expected to shrink the gap most.
type CrowdCollector struct {
	Workers  []*Worker
	Target   []float64 // normalized target distribution over values
	PerRound int

	collected []float64 // counts per value
	total     float64
	// Per-worker Dirichlet-smoothed submission histories.
	hist  [][]float64
	histN []float64
}

// NewCrowdCollector validates and builds a collector. Target is normalized
// internally.
func NewCrowdCollector(workers []*Worker, target []float64, perRound int) (*CrowdCollector, error) {
	if len(workers) == 0 {
		return nil, errors.New("acquisition: no workers")
	}
	if perRound <= 0 || perRound > len(workers) {
		return nil, errors.New("acquisition: perRound out of range")
	}
	c := &CrowdCollector{
		Workers:   workers,
		Target:    stats.Normalize(target),
		PerRound:  perRound,
		collected: make([]float64, len(target)),
		hist:      make([][]float64, len(workers)),
		histN:     make([]float64, len(workers)),
	}
	for i := range c.hist {
		c.hist[i] = make([]float64, len(target))
	}
	return c, nil
}

// Collected returns the smoothed empirical distribution of collected
// entities.
func (c *CrowdCollector) Collected() []float64 {
	return stats.Smooth(c.collected, 0.5)
}

// KL returns KL(target ‖ collected) on the smoothed collected distribution
// — the objective of Fan et al.
func (c *CrowdCollector) KL() float64 {
	return stats.KLDivergence(c.Target, c.Collected())
}

// estimate returns worker w's smoothed distribution estimate.
func (c *CrowdCollector) estimate(w int) []float64 {
	k := float64(len(c.Target))
	out := make([]float64, len(c.Target))
	for v := range out {
		out[v] = (c.hist[w][v] + 1) / (c.histN[w] + k)
	}
	return out
}

// deficiency returns max(0, target_v − collectedShare_v) per value: the
// mass still missing.
func (c *CrowdCollector) deficiency() []float64 {
	out := make([]float64, len(c.Target))
	for v := range out {
		share := 0.0
		if c.total > 0 {
			share = c.collected[v] / c.total
		}
		if d := c.Target[v] - share; d > 0 {
			out[v] = d
		}
	}
	return out
}

// AdaptiveRound selects the PerRound workers whose estimated distributions
// best match the current deficiency (highest expected contribution to
// missing mass), collects one entity from each, and updates all estimates.
func (c *CrowdCollector) AdaptiveRound(r *rng.RNG) {
	def := c.deficiency()
	type scored struct {
		w     int
		score float64
	}
	best := make([]scored, 0, len(c.Workers))
	for w := range c.Workers {
		est := c.estimate(w)
		s := 0.0
		for v := range est {
			s += est[v] * def[v]
		}
		best = append(best, scored{w: w, score: s})
	}
	// Partial selection of the top PerRound scores.
	for i := 0; i < c.PerRound; i++ {
		top := i
		for j := i + 1; j < len(best); j++ {
			if best[j].score > best[top].score {
				top = j
			}
		}
		best[i], best[top] = best[top], best[i]
		c.collectFrom(best[i].w, r)
	}
}

// RandomRound selects PerRound uniformly random distinct workers — the
// baseline policy.
func (c *CrowdCollector) RandomRound(r *rng.RNG) {
	perm := r.Perm(len(c.Workers))
	for i := 0; i < c.PerRound; i++ {
		c.collectFrom(perm[i], r)
	}
}

func (c *CrowdCollector) collectFrom(w int, r *rng.RNG) {
	v := c.Workers[w].Submit(r)
	c.collected[v]++
	c.total++
	c.hist[w][v]++
	c.histN[w]++
}

// Total returns the number of collected entities.
func (c *CrowdCollector) Total() float64 { return c.total }

// BudgetedRound extends the adaptive policy with worker costs
// (incentive-based collection, Chai et al. ICDE 2018): it selects workers
// in decreasing score-per-cost order until the round budget is exhausted,
// collecting one entity from each selected worker. It returns the budget
// actually spent. costs must be positive and parallel to Workers.
func (c *CrowdCollector) BudgetedRound(costs []float64, budget float64, r *rng.RNG) float64 {
	if len(costs) != len(c.Workers) {
		panic("acquisition: costs length mismatch")
	}
	def := c.deficiency()
	type scored struct {
		w     int
		value float64
	}
	cand := make([]scored, 0, len(c.Workers))
	for w := range c.Workers {
		est := c.estimate(w)
		s := 0.0
		for v := range est {
			s += est[v] * def[v]
		}
		cand = append(cand, scored{w: w, value: s / costs[w]})
	}
	// Selection sort over the candidates, spending greedily.
	spent := 0.0
	for i := 0; i < len(cand); i++ {
		top := i
		for j := i + 1; j < len(cand); j++ {
			if cand[j].value > cand[top].value {
				top = j
			}
		}
		cand[i], cand[top] = cand[top], cand[i]
		w := cand[i].w
		if spent+costs[w] > budget {
			continue
		}
		spent += costs[w]
		c.collectFrom(w, r)
	}
	return spent
}
