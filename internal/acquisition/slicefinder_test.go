package acquisition

import (
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/fairness"
	"redi/internal/rng"
)

// plantedSliceData: the model will be perfect except on grp=b;region=x,
// where labels are flipped half the time.
func plantedSliceData(t *testing.T, n int, seed uint64) (*dataset.Dataset, *fairness.Design, fairness.Model) {
	t.Helper()
	r := rng.New(seed)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "region", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "label", Kind: dataset.Categorical, Role: dataset.Target},
	))
	for i := 0; i < n; i++ {
		grp := "a"
		if r.Bool(0.25) {
			grp = "b"
		}
		region := "x"
		if r.Bool(0.5) {
			region = "y"
		}
		x := r.Normal(0, 1)
		label := "neg"
		if x > 0 {
			label = "pos"
		}
		// Poison the planted slice: half its labels disagree with x.
		if grp == "b" && region == "x" && r.Bool(0.5) {
			if label == "pos" {
				label = "neg"
			} else {
				label = "pos"
			}
		}
		d.MustAppendRow(dataset.Cat(grp), dataset.Cat(region), dataset.Num(x), dataset.Cat(label))
	}
	prob := fairness.Problem{Features: []string{"x"}, Label: "label", Positive: "pos", Sensitive: []string{"grp", "region"}}
	des, err := fairness.BuildDesign(d, prob)
	if err != nil {
		t.Fatal(err)
	}
	// The "model" is the Bayes rule of the clean process: sign(x).
	return d, des, signModel{}
}

type signModel struct{}

func (signModel) Score(x []float64) float64 { return x[0] }
func (signModel) Predict(x []float64) int {
	if x[0] > 0 {
		return 1
	}
	return 0
}

func TestFindProblemSlices(t *testing.T) {
	d, des, m := plantedSliceData(t, 4000, 1)
	slices, err := FindProblemSlices(m, des, d, SliceFinderConfig{
		Attrs: []string{"grp", "region"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("planted slice not found")
	}
	top := slices[0]
	if !strings.Contains(top.Description, "grp=b") || !strings.Contains(top.Description, "region=x") {
		t.Fatalf("top slice = %+v", top)
	}
	if top.Loss < 0.3 {
		t.Fatalf("top slice loss = %v, want ~0.5", top.Loss)
	}
	// No near-duplicate refinements of the top slice.
	for _, s := range slices[1:] {
		if top.Pattern.Dominates(s.Pattern) && s.Loss <= top.Loss {
			t.Fatalf("dominated slice kept: %+v", s)
		}
	}
}

func TestFindProblemSlicesCleanModel(t *testing.T) {
	// Without poisoning, no slice should clear the gap threshold.
	r := rng.New(2)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "label", Kind: dataset.Categorical, Role: dataset.Target},
	))
	for i := 0; i < 2000; i++ {
		grp := "a"
		if i%3 == 0 {
			grp = "b"
		}
		x := r.Normal(0, 1)
		label := "neg"
		if x > 0 {
			label = "pos"
		}
		d.MustAppendRow(dataset.Cat(grp), dataset.Num(x), dataset.Cat(label))
	}
	des, err := fairness.BuildDesign(d, fairness.Problem{
		Features: []string{"x"}, Label: "label", Positive: "pos", Sensitive: []string{"grp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	slices, err := FindProblemSlices(signModel{}, des, d, SliceFinderConfig{Attrs: []string{"grp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 0 {
		t.Fatalf("clean model produced slices: %+v", slices)
	}
}

func TestFindProblemSlicesValidation(t *testing.T) {
	d, des, m := plantedSliceData(t, 100, 3)
	if _, err := FindProblemSlices(m, des, d, SliceFinderConfig{}); err == nil {
		t.Fatal("no attrs accepted")
	}
}

func TestFindProblemSlicesMinSize(t *testing.T) {
	d, des, m := plantedSliceData(t, 4000, 4)
	// A MinSize larger than the planted slice suppresses it.
	slices, err := FindProblemSlices(m, des, d, SliceFinderConfig{
		Attrs:   []string{"grp", "region"},
		MinSize: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slices {
		if s.N < 3000 {
			t.Fatalf("undersized slice kept: %+v", s)
		}
	}
}
