// Package parallel is REDI's deterministic fork-join layer: a small,
// dependency-free set of helpers that shard work across goroutines while
// guaranteeing that results are assembled in stable input order, so a
// parallel run is bit-identical to a serial run at any worker count.
//
// The contract every helper honors:
//
//   - Results are merged in input (or shard) order, never in completion
//     order. A caller that is itself deterministic therefore stays
//     deterministic at workers ∈ {1, 2, ..., N}.
//   - Work is split into at most `workers` contiguous chunks, so goroutine
//     overhead is bounded by the worker count, not the item count.
//   - A panic inside a worker is re-raised in the caller (first chunk
//     wins), so parallel call sites fail the same way serial ones do.
//   - Below a small size threshold (or at one effective worker) the
//     helpers run inline on the calling goroutine — the serial fallback.
//
// Randomized work sharded across workers must not share one RNG stream;
// use rng.Split(seed, shard) to give each shard its own decorrelated,
// reproducible stream.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"redi/internal/obs"
)

// obsReg is the layer's optional observer. Dispatch counts, chunk geometry,
// and per-chunk item counts depend on the worker count and machine, so they
// are recorded as runtime-class metrics (excluded from the deterministic
// snapshot); instrumented *callers* remain responsible for keeping their own
// counters worker-invariant.
var obsReg atomic.Pointer[obs.Registry]

// SetObserver installs the registry that receives the layer's runtime
// metrics (nil disables). Intended for CLI entry points, alongside
// obs.Enable.
func SetObserver(r *obs.Registry) { obsReg.Store(r) }

// observeDispatch records one For/Map/MapChunks call: total items and the
// chunk layout it dispatched ([n, n] when it ran inline).
func observeDispatch(op string, n int, chunks [][2]int) {
	r := obsReg.Load()
	if r == nil {
		return
	}
	r.RuntimeCounter("parallel." + op + ".calls").Inc()
	r.RuntimeCounter("parallel." + op + ".items").Add(int64(n))
	if chunks == nil {
		r.RuntimeCounter("parallel." + op + ".inline_calls").Inc()
		return
	}
	r.RuntimeCounter("parallel." + op + ".chunks").Add(int64(len(chunks)))
	h := r.RuntimeHistogram("parallel.chunk_items", obs.ExpBounds(1, 24))
	for _, c := range chunks {
		h.Observe(int64(c[1] - c[0]))
	}
}

// Auto requests one worker per available CPU (GOMAXPROCS).
const Auto = -1

// ForGrain is the minimum item count at which For dispatches goroutines;
// below it the loop body is assumed too fine-grained to amortize fork-join
// overhead and runs inline.
const ForGrain = 32

// Workers resolves a requested worker count: n > 0 means exactly n, 0 means
// serial (one worker, the zero-value default at every call site), and any
// negative value (canonically Auto) means one worker per CPU.
func Workers(requested int) int {
	switch {
	case requested > 0:
		return requested
	case requested == 0:
		return 1
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// Chunks splits [0, n) into at most workers contiguous [lo, hi) ranges of
// near-equal size, in order. It returns nil when n <= 0.
func Chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	per, extra := n/w, n%w
	lo := 0
	for s := 0; s < w; s++ {
		hi := lo + per
		if s < extra {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// runChunks executes fn once per chunk on its own goroutine and re-raises
// the first (lowest-chunk-index) panic after all chunks finish.
func runChunks(chunks [][2]int, fn func(shard, lo, hi int)) {
	var wg sync.WaitGroup
	panics := make([]any, len(chunks))
	for s, c := range chunks {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[s] = p
				}
			}()
			fn(s, lo, hi)
		}(s, c[0], c[1])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// For runs fn(i) for every i in [0, n). The iterations are assumed
// fine-grained: with one effective worker or fewer than ForGrain items the
// loop runs inline. fn must not depend on iteration order across chunks.
func For(workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w <= 1 || n < ForGrain {
		observeDispatch("for", n, nil)
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunks := Chunks(n, w)
	observeDispatch("for", n, chunks)
	runChunks(chunks, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every element of in and returns the results in input
// order. Items are assumed coarse enough to be worth dispatching whenever
// there are at least two of them and more than one effective worker.
func Map[T, R any](workers int, in []T, fn func(i int, v T) R) []R {
	if len(in) == 0 {
		return nil
	}
	out := make([]R, len(in))
	w := Workers(workers)
	if w <= 1 || len(in) < 2 {
		observeDispatch("map", len(in), nil)
		for i, v := range in {
			out[i] = fn(i, v)
		}
		return out
	}
	chunks := Chunks(len(in), w)
	observeDispatch("map", len(in), chunks)
	runChunks(chunks, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i, in[i])
		}
	})
	return out
}

// MapChunks shards [0, n) into contiguous chunks, runs fn once per chunk,
// and returns the per-chunk results in shard order. It is the primitive for
// reductions that carry per-shard state (local accumulators, RNG streams
// from rng.Split) and merge deterministically afterwards.
func MapChunks[R any](workers, n int, fn func(shard, lo, hi int) R) []R {
	chunks := Chunks(n, workers)
	if chunks == nil {
		return nil
	}
	observeDispatch("map_chunks", n, chunks)
	out := make([]R, len(chunks))
	if len(chunks) == 1 {
		out[0] = fn(0, chunks[0][0], chunks[0][1])
		return out
	}
	runChunks(chunks, func(s, lo, hi int) {
		out[s] = fn(s, lo, hi)
	})
	return out
}
