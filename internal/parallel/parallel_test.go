package parallel

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want serial fallback 1", got)
	}
	if got := Workers(Auto); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(Auto) = %d, want GOMAXPROCS", got)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 31, 32, 100, 1001} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			chunks := Chunks(n, w)
			next := 0
			for _, c := range chunks {
				if c[0] != next || c[1] <= c[0] {
					t.Fatalf("n=%d w=%d: bad chunk %v after %d", n, w, c, next)
				}
				next = c[1]
			}
			if next != n {
				t.Fatalf("n=%d w=%d: chunks cover %d items", n, w, next)
			}
			if len(chunks) > w {
				t.Fatalf("n=%d w=%d: %d chunks exceed workers", n, w, len(chunks))
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	square := func(_ int, v int) int { return v * v }
	serial := Map(1, in, square)
	for _, w := range []int{2, 3, 8, 64} {
		if got := Map(w, in, square); !reflect.DeepEqual(got, serial) {
			t.Fatalf("Map workers=%d diverged from serial", w)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, ForGrain - 1, ForGrain, 1000} {
		for _, w := range []int{1, 4, 9} {
			counts := make([]int32, n)
			For(w, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestMapChunksShardOrder(t *testing.T) {
	sum := func(_, lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	}
	serial := MapChunks(1, 1000, sum)
	total := 0
	for _, s := range serial {
		total += s
	}
	for _, w := range []int{2, 5, 16} {
		parts := MapChunks(w, 1000, sum)
		got := 0
		for _, s := range parts {
			got += s
		}
		if got != total {
			t.Fatalf("MapChunks workers=%d total %d, want %d", w, got, total)
		}
		if len(parts) > w {
			t.Fatalf("MapChunks workers=%d produced %d shards", w, len(parts))
		}
	}
	if MapChunks(4, 0, sum) != nil {
		t.Fatal("MapChunks over empty range should be nil")
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want worker panic", r)
		}
	}()
	Map(8, make([]int, 256), func(i int, _ int) int {
		if i == 100 {
			panic("boom")
		}
		return 0
	})
	t.Fatal("panic did not propagate")
}
