package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	r.Histogram("h", ExpBounds(1, 4)).Observe(3)
	r.RuntimeCounter("rc").Inc()
	r.RuntimeHistogram("rh", ExpBounds(1, 4)).Observe(1)
	r.Gauge("g").Set(1.5)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	r.StartSpan("s").End()
	r.RecordSpan("s", time.Second)
	r.Merge(NewRegistry())
	c.Sharded(4).Add(0, 1)
	c.Sharded(4).Merge()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %v", snap.Counters)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if c != r.Counter("hits") {
		t.Fatal("Counter is not get-or-create stable")
	}
}

func TestShardedCounterMergeOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work")
	s := c.Sharded(4)
	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(shard, int64(shard+1))
			}
		}(shard)
	}
	wg.Wait()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter visible before Merge: %d", got)
	}
	s.Merge()
	if got := c.Value(); got != 100*(1+2+3+4) {
		t.Fatalf("merged counter = %d, want %d", got, 100*(1+2+3+4))
	}
	s.Merge() // shards reset: second merge adds nothing
	if got := c.Value(); got != 1000 {
		t.Fatalf("re-merge changed counter to %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["sizes"]
	if snap.Count != 9 {
		t.Fatalf("count = %d, want 9", snap.Count)
	}
	if snap.Sum != 0+1+2+3+4+5+8+9+100 {
		t.Fatalf("sum = %d", snap.Sum)
	}
	wantBuckets := []int64{2, 1, 2, 2, 2} // ≤1, ≤2, ≤4, ≤8, +Inf
	for i, want := range wantBuckets {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.LE != -1 {
		t.Fatalf("overflow bucket LE = %d, want -1", last.LE)
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", got, want)
		}
	}
}

func TestSnapshotCanonicalBytes(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b.two").Add(2)
		r.Counter("a.one").Add(1)
		r.Histogram("h", ExpBounds(1, 3)).Observe(2)
		// Runtime-class metrics must not leak into the snapshot.
		r.RuntimeCounter("noise").Add(42)
		r.Gauge("g").Set(3.14)
		r.RecordSpan("sp", time.Millisecond)
		return r
	}
	b1, err := build().MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := build().MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", b1, b2)
	}
	if strings.Contains(string(b1), "noise") || strings.Contains(string(b1), "spans") {
		t.Fatalf("runtime metrics leaked into snapshot:\n%s", b1)
	}
}

func TestSpanClockSeam(t *testing.T) {
	tick := time.Unix(100, 0)
	restore := SetClock(func() time.Time {
		tick = tick.Add(7 * time.Millisecond)
		return tick
	})
	defer restore()
	r := NewRegistry()
	sp := r.StartSpan("step")
	if d := sp.End(); d != 7*time.Millisecond {
		t.Fatalf("span duration = %v, want 7ms", d)
	}
	rep := r.Report()
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "step" || rep.Spans[0].Elapsed != 7*time.Millisecond {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	if got := Now(); !got.Equal(tick) {
		t.Fatalf("Now() did not route through the seam")
	}
}

func TestMerge(t *testing.T) {
	run := NewRegistry()
	run.Counter("c").Add(3)
	run.Histogram("h", ExpBounds(1, 3)).Observe(2)
	run.RuntimeCounter("rc").Add(5)
	run.Gauge("g").Set(1.25)
	run.RecordSpan("sp", time.Second)

	ambient := NewRegistry()
	ambient.Counter("c").Add(10)
	ambient.Merge(run)

	if got := ambient.Counter("c").Value(); got != 13 {
		t.Fatalf("merged counter = %d, want 13", got)
	}
	if got := ambient.RuntimeCounter("rc").Value(); got != 5 {
		t.Fatalf("merged runtime counter = %d, want 5", got)
	}
	if got := ambient.Gauge("g").Value(); got != 1.25 {
		t.Fatalf("merged gauge = %v", got)
	}
	rep := ambient.Report()
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "sp" {
		t.Fatalf("merged spans = %+v", rep.Spans)
	}
	h := rep.Histograms["h"]
	if h.Count != 1 || h.Sum != 2 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestDeltaCounters(t *testing.T) {
	before := map[string]int64{"a": 1, "b": 2}
	after := map[string]int64{"a": 4, "b": 2, "c": 7}
	d := DeltaCounters(before, after)
	if len(d) != 2 || d["a"] != 3 || d["c"] != 7 {
		t.Fatalf("delta = %v", d)
	}
	if DeltaCounters(after, after) != nil {
		t.Fatal("no-change delta should be nil")
	}
	if DeltaCounters(nil, nil) != nil {
		t.Fatal("empty delta should be nil")
	}
}

func TestEnableActive(t *testing.T) {
	defer Enable(nil)
	if Active(nil) != nil {
		t.Fatal("Active(nil) with no global should be nil")
	}
	global := NewRegistry()
	Enable(global)
	if Active(nil) != global {
		t.Fatal("Active(nil) should resolve to the enabled global")
	}
	site := NewRegistry()
	if Active(site) != site {
		t.Fatal("explicit site registry must win over the global")
	}
	Enable(nil)
	if Active(nil) != nil {
		t.Fatal("Enable(nil) should disable the global")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("coverage.dfs_nodes").Add(12)
	r.Histogram("cleaning.er_cluster_size", []int64{1, 2}).Observe(2)
	r.RuntimeCounter("parallel.calls").Add(3)
	r.Gauge("workers").Set(8)
	r.RecordSpan("tailor", 1500*time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE redi_coverage_dfs_nodes counter",
		"redi_coverage_dfs_nodes 12",
		"# TYPE redi_cleaning_er_cluster_size histogram",
		`redi_cleaning_er_cluster_size_bucket{le="2"} 1`,
		`redi_cleaning_er_cluster_size_bucket{le="+Inf"} 1`,
		"redi_cleaning_er_cluster_size_sum 2",
		"redi_cleaning_er_cluster_size_count 1",
		"redi_parallel_calls 3",
		"# TYPE redi_workers gauge",
		"redi_workers 8",
		`redi_span_seconds_sum{span="tailor"} 1.5`,
		`redi_span_count{span="tailor"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusSanitizationContract pins the exposition-format
// guarantees: every family name is a legal Prometheus identifier, no
// family is declared twice — even when sanitization collapses distinct
// source names onto one identifier or the same name is registered in
// both metric classes — label values are quote-escaped, and the whole
// output is a deterministic function of the registry contents.
func TestWritePrometheusSanitizationContract(t *testing.T) {
	r := NewRegistry()
	// Three distinct source names that all sanitize to redi_a_b.
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)
	r.Counter("a-b").Add(3)
	// The same name again in the runtime class.
	r.RuntimeCounter("a.b").Add(4)
	// Name-illegal bytes: multi-byte unicode, space, quote, leading digit.
	r.Counter("söme metric\"x").Add(5)
	r.Gauge("9lives").Set(1)
	// A counter squatting on the fixed span-family name.
	r.Counter("span_count").Add(6)
	r.RecordSpan(`tailor"quoted\`, 1500*time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"\})? \S+$`)
	families := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if !nameRE.MatchString(fields[2]) {
				t.Fatalf("illegal family name %q in %q", fields[2], line)
			}
			if families[fields[2]] {
				t.Fatalf("family %q declared twice:\n%s", fields[2], out)
			}
			families[fields[2]] = true
			continue
		}
		if !sampleRE.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	// Collision resolution is deterministic: det counters first in sorted
	// order ("a-b" < "a.b" < "a_b" bytewise), then the runtime section.
	for _, want := range []string{
		"redi_a_b 3", "redi_a_b_2 1", "redi_a_b_3 2", "redi_a_b_4 4",
		"redi_s__me_metric_x 5", // 'ö' is two UTF-8 bytes, two underscores
		"redi_9lives 1",
		"redi_span_count 6",              // the counter keeps the plain name
		`redi_span_count_2{span="tailor`, // the span family is renamed away
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("WritePrometheus is not deterministic for a fixed registry state")
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("dt.draws").Add(44)
	r.RuntimeCounter("parallel.items").Add(9)
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "dt.draws") || !strings.Contains(txt.String(), "44") {
		t.Fatalf("text report missing counter:\n%s", txt.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"dt.draws": 44`) {
		t.Fatalf("json report missing counter:\n%s", js.String())
	}
	if got := r.ExpvarFunc()().(Report).Counters["dt.draws"]; got != 44 {
		t.Fatalf("expvar func counter = %d", got)
	}
}
