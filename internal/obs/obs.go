// Package obs is REDI's deterministic observability layer: named counters,
// histograms, gauges, and spans collected into a Registry and exported as
// JSON, Prometheus text, or a human-readable report (§5 transparency — the
// integrated dataset ships with an account of the work that produced it).
//
// Metrics are split into two classes with different contracts:
//
//   - Deterministic (Counter, Histogram): pure algorithmic quantities —
//     operation counts, sizes, depths. These must be bit-identical across
//     runs and across worker counts, exactly like the results they annotate.
//     Instrumented code upholds this by counting integer quantities only
//     (integer addition is commutative, so shard merge order cannot leak)
//     and by never counting anything that depends on chunking, scheduling,
//     or the machine. Registry.Snapshot exposes only this class, and the
//     determinism tests compare its canonical JSON byte-for-byte.
//
//   - Runtime (RuntimeCounter, RuntimeHistogram, Gauge, spans): quantities
//     that legitimately vary run-to-run or with the worker count — chunk
//     geometry, per-worker item counts, wall-clock durations. They are
//     reported (Registry.Report) but excluded from Snapshot.
//
// Wall-clock time enters the package through exactly one injectable seam
// (var now, annotated for the walltime lint rule); span durations flow only
// through it, so tests pin a fake clock and everything downstream of obs
// stays free of bare time.Now reads.
//
// A nil *Registry — and every metric handle obtained from one — is a valid
// no-op receiver, so hot paths can be instrumented unconditionally and cost
// ~zero when observability is off.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// now is the package's single wall-clock seam. Span durations are
// observational outputs, never algorithm inputs, so one annotated read
// keeps the whole instrumented surface inside the determinism contract.
var now = time.Now //redi:allow walltime single injectable clock seam: span durations are observational outputs, never algorithm inputs

// Now reads the observability clock seam. Instrumented packages that need a
// timestamp (e.g. core's pipeline step timer) route through this instead of
// time.Now so the seam stays singular and test-pinnable.
func Now() time.Time { return now() }

// SetClock replaces the clock seam and returns a restore func. Test-only:
// callers must restore before the test ends and must not race concurrent
// span recording.
func SetClock(clock func() time.Time) (restore func()) {
	prev := now
	now = clock
	return func() { now = prev }
}

// Counter is a monotonically increasing integer metric. Add is atomic, so
// concurrent workers may share one Counter; because integer addition is
// commutative, the final value is independent of interleaving and worker
// count whenever the added quantities are. A nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// shardSlot pads each shard's accumulator to a cache line so concurrent
// workers do not false-share.
type shardSlot struct {
	n int64
	_ [56]byte
}

// ShardedCounter gives each worker a private, cache-line-padded accumulator
// and folds the shards into the parent Counter in ascending shard order on
// Merge — the same discipline as rng.Split: shard identity, not scheduling,
// determines where work lands. For a commutative integer sum the merge
// order cannot change the total; keeping it deterministic anyway means the
// pattern stays safe if a future metric is not commutative.
type ShardedCounter struct {
	c     *Counter
	slots []shardSlot
}

// Sharded returns a per-shard view of c with the given shard count.
// Returns nil (a no-op view) when c is nil.
func (c *Counter) Sharded(shards int) *ShardedCounter {
	if c == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{c: c, slots: make([]shardSlot, shards)}
}

// Add adds n to the given shard without synchronization; each shard must be
// owned by one goroutine at a time. No-op on a nil receiver.
func (s *ShardedCounter) Add(shard int, n int64) {
	if s != nil {
		s.slots[shard].n += n
	}
}

// Merge folds all shards into the parent counter in shard order and resets
// them. Call after the parallel section has joined.
func (s *ShardedCounter) Merge() {
	if s == nil {
		return
	}
	total := int64(0)
	for i := range s.slots {
		total += s.slots[i].n
		s.slots[i].n = 0
	}
	s.c.Add(total)
}

// Gauge is a runtime-class float metric (last write wins). Gauges may hold
// machine- or schedule-dependent quantities and are therefore excluded from
// the deterministic Snapshot. A nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts integer observations into buckets with fixed upper
// bounds (ascending; values above the last bound land in an overflow
// bucket). Buckets, count, and sum are atomic integer adds, so a histogram
// of deterministic quantities is itself deterministic. A nil Histogram is a
// no-op.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1: last bucket is > bounds[len-1]
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records v. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observed values by
// linear interpolation inside the bucket the rank falls in, Prometheus
// histogram_quantile style. Values in the overflow bucket are reported as
// the last finite bound (quantiles saturate there). Returns 0 on a nil or
// empty histogram.
//
// The estimate is runtime-class by definition: it is an interpolated float
// read of possibly concurrent bucket counts, meant for latency lines
// (p50/p90/p99 in Report/WriteText and on /metrics), and the obsclass lint
// rule rejects it as an input to deterministic counters or histograms.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum, lower := int64(0), float64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if i == len(h.bounds) {
			return lower // overflow bucket: saturate at the last finite bound
		}
		upper := float64(h.bounds[i])
		if n > 0 && float64(cum)+float64(n) >= rank {
			return lower + (upper-lower)*(rank-float64(cum))/float64(n)
		}
		cum += n
		lower = upper
	}
	return lower
}

// ExpBounds returns n doubling bucket bounds starting at start:
// start, 2*start, 4*start, ...
func ExpBounds(start int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	bounds := make([]int64, 0, n)
	for b := start; len(bounds) < n; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// SpanRecord is one finished span: a named piece of work and its duration
// as measured through the clock seam. Spans are runtime-class.
type SpanRecord struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Span is an in-flight span started by Registry.StartSpan.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// End finishes the span, records it, and returns its duration.
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := now().Sub(sp.start)
	sp.r.RecordSpan(sp.name, d)
	return d
}

// Registry holds a process- or run-scoped set of named metrics. The zero
// value is ready to use; a nil *Registry is a valid no-op sink. Metric
// handles are get-or-create and stable, so hot loops should look a handle
// up once and hold it rather than re-resolving the name per iteration.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	hists     map[string]*Histogram
	rcounters map[string]*Counter
	rhists    map[string]*Histogram
	gauges    map[string]*Gauge
	spans     []SpanRecord
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named deterministic counter, creating it if needed.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named deterministic histogram, creating it with the
// given bucket bounds if needed (an existing histogram keeps its original
// bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// RuntimeCounter returns the named runtime-class counter (reported but
// excluded from the deterministic Snapshot). Returns nil on a nil registry.
func (r *Registry) RuntimeCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rcounters == nil {
		r.rcounters = make(map[string]*Counter)
	}
	c := r.rcounters[name]
	if c == nil {
		c = &Counter{}
		r.rcounters[name] = c
	}
	return c
}

// RuntimeHistogram returns the named runtime-class histogram. Returns nil
// on a nil registry.
func (r *Registry) RuntimeHistogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rhists == nil {
		r.rhists = make(map[string]*Histogram)
	}
	h := r.rhists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.rhists[name] = h
	}
	return h
}

// Gauge returns the named runtime-class gauge. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// StartSpan starts a named span on the clock seam; call End on the result.
// Returns nil (a no-op span) on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: now()}
}

// RecordSpan appends an externally measured span (for callers that time
// work through their own seam, e.g. core's pipeline).
func (r *Registry) RecordSpan(name string, elapsed time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, SpanRecord{Name: name, Elapsed: elapsed})
	r.mu.Unlock()
}

// CounterValues returns a name→value copy of the deterministic counters,
// for delta accounting (see DeltaCounters).
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// DeltaCounters returns after−before, dropping zero deltas; nil when
// nothing moved. Used to attribute counters to pipeline steps.
func DeltaCounters(before, after map[string]int64) map[string]int64 {
	if len(after) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Merge folds src into r: counters and histogram buckets add, gauges take
// src's value, spans append. Used by run-scoped registries (e.g. one
// pipeline run) to publish into an ambient registry after computing exact
// per-step deltas privately. No-op when either registry is nil.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	rcounters := make(map[string]int64, len(src.rcounters))
	for name, c := range src.rcounters {
		rcounters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Value()
	}
	hists := copyHists(src.hists)
	rhists := copyHists(src.rhists)
	spans := make([]SpanRecord, len(src.spans))
	copy(spans, src.spans)
	src.mu.Unlock()

	for _, name := range sortedNames(counters) {
		r.Counter(name).Add(counters[name])
	}
	for _, name := range sortedNames(rcounters) {
		r.RuntimeCounter(name).Add(rcounters[name])
	}
	for _, name := range sortedNames(gauges) {
		r.Gauge(name).Set(gauges[name])
	}
	for _, name := range sortedNames(hists) {
		mergeHist(r.Histogram(name, hists[name].bounds), hists[name])
	}
	for _, name := range sortedNames(rhists) {
		mergeHist(r.RuntimeHistogram(name, rhists[name].bounds), rhists[name])
	}
	r.mu.Lock()
	r.spans = append(r.spans, spans...)
	r.mu.Unlock()
}

// copyHists deep-copies a histogram map under the source's lock.
func copyHists(src map[string]*Histogram) map[string]*Histogram {
	out := make(map[string]*Histogram, len(src))
	for name, h := range src {
		c := newHistogram(h.bounds)
		for i := range h.buckets {
			c.buckets[i].Store(h.buckets[i].Load())
		}
		c.count.Store(h.count.Load())
		c.sum.Store(h.sum.Load())
		out[name] = c
	}
	return out
}

// mergeHist adds src's buckets into dst. Buckets align because histograms
// are keyed by name and keep their creation bounds; a bound mismatch folds
// everything into dst's overflow via Observe of the sum as a fallback.
func mergeHist(dst, src *Histogram) {
	if len(dst.bounds) != len(src.bounds) {
		dst.Observe(src.sum.Load())
		return
	}
	for i := range src.buckets {
		dst.buckets[i].Add(src.buckets[i].Load())
	}
	dst.count.Add(src.count.Load())
	dst.sum.Add(src.sum.Load())
}

// sortedNames returns m's keys in ascending order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// active is the optional process-wide registry. Instrumented packages
// resolve their sink as Active(site-field): an explicit per-site registry
// wins, otherwise the enabled global, otherwise nil (all no-ops).
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry (nil disables). Intended
// for CLI entry points and tests; libraries should prefer per-site fields.
func Enable(r *Registry) {
	active.Store(r)
}

// Active resolves the effective registry for an instrumentation site: the
// site's own registry if non-nil, else the process-wide one, else nil.
func Active(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return active.Load()
}
