package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// BucketCount is one histogram bucket: observations ≤ LE (the final bucket
// reports LE = -1, meaning +Inf).
type BucketCount struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's exported state. Quantiles is populated
// only for runtime-class histograms in Report — quantile estimates are
// interpolated floats and never enter the deterministic Snapshot surface.
type HistogramSnapshot struct {
	Count     int64              `json:"count"`
	Sum       int64              `json:"sum"`
	Buckets   []BucketCount      `json:"buckets"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot is the deterministic slice of a registry: counters and
// histograms only. Its canonical JSON (encoding/json sorts map keys) is
// bit-identical across runs and worker counts for a correctly instrumented
// program — that is the property the determinism tests assert.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Report is the full exported state: the deterministic snapshot plus the
// runtime-class sections.
type Report struct {
	Snapshot
	RuntimeCounters   map[string]int64             `json:"runtime_counters,omitempty"`
	RuntimeHistograms map[string]HistogramSnapshot `json:"runtime_histograms,omitempty"`
	Gauges            map[string]float64           `json:"gauges,omitempty"`
	Spans             []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot returns the registry's deterministic metrics. A nil registry
// yields an empty (but marshalable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			snap.Histograms[name] = snapHistogram(h)
		}
	}
	return snap
}

// Report returns the registry's full exported state.
func (r *Registry) Report() Report {
	rep := Report{Snapshot: r.Snapshot()}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rcounters) > 0 {
		rep.RuntimeCounters = make(map[string]int64, len(r.rcounters))
		for name, c := range r.rcounters {
			rep.RuntimeCounters[name] = c.Value()
		}
	}
	if len(r.rhists) > 0 {
		rep.RuntimeHistograms = make(map[string]HistogramSnapshot, len(r.rhists))
		for name, h := range r.rhists {
			hs := snapHistogram(h)
			if hs.Count > 0 {
				hs.Quantiles = map[string]float64{
					"p50": h.Quantile(0.50),
					"p90": h.Quantile(0.90),
					"p99": h.Quantile(0.99),
				}
			}
			rep.RuntimeHistograms[name] = hs
		}
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			rep.Gauges[name] = g.Value()
		}
	}
	rep.Spans = make([]SpanRecord, len(r.spans))
	copy(rep.Spans, r.spans)
	return rep
}

func snapHistogram(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]BucketCount, len(h.buckets)),
	}
	for i := range h.buckets {
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: h.buckets[i].Load()}
	}
	return s
}

// WriteJSON writes the full report as indented JSON. encoding/json emits
// map keys sorted, so the bytes are canonical for a given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Report(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, names sanitized and prefixed with redi_, families sorted by name.
// Histogram buckets are cumulative per the format's convention; spans are
// aggregated into per-name sum/count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	rep := r.Report()
	nm := newPromNamer()
	var sb strings.Builder
	writePromValues(&sb, nm, rep.Counters, "counter")
	writePromValues(&sb, nm, rep.RuntimeCounters, "counter")
	writePromHists(&sb, nm, rep.Histograms)
	writePromHists(&sb, nm, rep.RuntimeHistograms)
	for _, name := range sortedNames(rep.Gauges) {
		pn := nm.name(name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(rep.Gauges[name]))
	}
	writePromSpans(&sb, nm, rep.Spans)
	_, err := io.WriteString(w, sb.String())
	return err
}

// promNamer gives every exported family a unique Prometheus name.
// Sanitization maps distinct dotted names onto one identifier ("a.b" and
// "a_b" both become redi_a_b), and the same source name may be registered
// in both the deterministic and runtime sections; duplicate families are
// invalid exposition, so later claimants get a _2/_3 suffix. Sections are
// written in a fixed order over sorted names, so the assignment is a
// deterministic function of the registry's contents.
type promNamer struct {
	taken map[string]bool
}

func newPromNamer() *promNamer { return &promNamer{taken: map[string]bool{}} }

func (n *promNamer) name(source string) string {
	pn := promName(source)
	if !n.taken[pn] {
		n.taken[pn] = true
		return pn
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", pn, i)
		if !n.taken[cand] {
			n.taken[cand] = true
			return cand
		}
	}
}

func writePromValues(sb *strings.Builder, nm *promNamer, m map[string]int64, typ string) {
	for _, name := range sortedNames(m) {
		pn := nm.name(name)
		fmt.Fprintf(sb, "# TYPE %s %s\n%s %d\n", pn, typ, pn, m[name])
	}
}

func writePromHists(sb *strings.Builder, nm *promNamer, m map[string]HistogramSnapshot) {
	for _, name := range sortedNames(m) {
		h := m[name]
		pn := nm.name(name)
		fmt.Fprintf(sb, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.LE >= 0 {
				le = fmt.Sprintf("%d", b.LE)
			}
			fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(sb, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
		for _, q := range sortedNames(h.Quantiles) {
			fmt.Fprintf(sb, "%s_quantile{q=%q} %s\n", pn, q, promFloat(h.Quantiles[q]))
		}
	}
}

func writePromSpans(sb *strings.Builder, nm *promNamer, spans []SpanRecord) {
	if len(spans) == 0 {
		return
	}
	type agg struct {
		sum   time.Duration
		count int64
	}
	byName := map[string]agg{}
	for _, sp := range spans {
		a := byName[sp.Name]
		a.sum += sp.Elapsed
		a.count++
		byName[sp.Name] = a
	}
	names := sortedNames(byName)
	// The fixed span-family names go through the namer too, so a metric
	// literally named span_seconds_sum cannot produce a duplicate family.
	sumName, countName := nm.name("span_seconds_sum"), nm.name("span_count")
	fmt.Fprintf(sb, "# TYPE %s counter\n", sumName)
	for _, name := range names {
		fmt.Fprintf(sb, "%s{span=%q} %s\n", sumName, name, promFloat(byName[name].sum.Seconds()))
	}
	fmt.Fprintf(sb, "# TYPE %s counter\n", countName)
	for _, name := range names {
		fmt.Fprintf(sb, "%s{span=%q} %d\n", countName, name, byName[name].count)
	}
}

// promFloat renders a float without exponent notation surprises for the
// common cases (Prometheus accepts Go's %g, so this is cosmetic).
func promFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// promName sanitizes a dotted metric name into a Prometheus identifier.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("redi_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WriteText writes a human-readable report: deterministic counters and
// histograms first, then the runtime sections.
func (r *Registry) WriteText(w io.Writer) error {
	rep := r.Report()
	var sb strings.Builder
	sb.WriteString("observability report\n")
	writeTextValues(&sb, "counters", rep.Counters)
	writeTextHists(&sb, "histograms", rep.Histograms)
	writeTextValues(&sb, "runtime counters", rep.RuntimeCounters)
	writeTextHists(&sb, "runtime histograms", rep.RuntimeHistograms)
	if len(rep.Gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, name := range sortedNames(rep.Gauges) {
			fmt.Fprintf(&sb, "  %-40s %s\n", name, promFloat(rep.Gauges[name]))
		}
	}
	if len(rep.Spans) > 0 {
		sb.WriteString("spans:\n")
		for _, sp := range rep.Spans {
			fmt.Fprintf(&sb, "  %-40s %s\n", sp.Name, sp.Elapsed)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeTextValues(sb *strings.Builder, title string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(sb, "%s:\n", title)
	for _, name := range sortedNames(m) {
		fmt.Fprintf(sb, "  %-40s %d\n", name, m[name])
	}
}

func writeTextHists(sb *strings.Builder, title string, m map[string]HistogramSnapshot) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(sb, "%s:\n", title)
	for _, name := range sortedNames(m) {
		h := m[name]
		fmt.Fprintf(sb, "  %-40s count=%d sum=%d", name, h.Count, h.Sum)
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if b.LE < 0 {
				fmt.Fprintf(sb, " +Inf:%d", b.Count)
			} else {
				fmt.Fprintf(sb, " ≤%d:%d", b.LE, b.Count)
			}
		}
		for _, q := range sortedNames(h.Quantiles) {
			fmt.Fprintf(sb, " %s=%s", q, promFloat(h.Quantiles[q]))
		}
		sb.WriteByte('\n')
	}
}

// ExpvarFunc adapts the registry for expvar.Publish(expvar.Func(...)).
func (r *Registry) ExpvarFunc() func() any {
	return func() any { return r.Report() }
}

// MarshalSnapshot returns the canonical JSON bytes of the deterministic
// snapshot — the unit of comparison for worker-invariance tests.
func (r *Registry) MarshalSnapshot() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
