package obs

import (
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 20, 40, 80})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v", h.Quantile(0.5))
	}
	// 100 observations spread evenly through the ≤20 bucket (values 11..20
	// land there after 10 land in ≤10): exact ranks are interpolable.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v % 100) // 0..99: 11 in ≤10 (0..10), 10 in ≤20, 20 in ≤40, 40 in ≤80, 19 overflow
	}
	if q := h.Quantile(0); q <= 0 || q > 10 {
		t.Fatalf("p0 = %v, want in (0, 10]", q)
	}
	// True median of 0..99 is 49.5; interpolation lands at 49 inside ≤80.
	if q := h.Quantile(0.5); q < 45 || q > 55 {
		t.Fatalf("p50 = %v, want near 49", q)
	}
	// Quantiles in the overflow bucket saturate at the last finite bound.
	if q := h.Quantile(0.99); q != 80 {
		t.Fatalf("p99 = %v, want 80 (saturated)", q)
	}
	// Monotonic in p.
	prev := 0.0
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone: p=%v -> %v < %v", p, q, prev)
		}
		prev = q
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}

// TestQuantilesRuntimeOnly pins the class split: p50/p90/p99 appear on
// runtime histograms in Report, WriteText, and Prometheus output, and never
// on the deterministic Snapshot surface.
func TestQuantilesRuntimeOnly(t *testing.T) {
	r := NewRegistry()
	det := r.Histogram("det.sizes", ExpBounds(1, 6))
	rt := r.RuntimeHistogram("serve.latency", ExpBounds(1, 6))
	for v := int64(1); v <= 30; v++ {
		det.Observe(v)
		rt.Observe(v)
	}
	rep := r.Report()
	if q := rep.RuntimeHistograms["serve.latency"].Quantiles; len(q) != 3 {
		t.Fatalf("runtime quantiles = %v", q)
	}
	if q := rep.Histograms["det.sizes"].Quantiles; q != nil {
		t.Fatalf("deterministic histogram grew quantiles: %v", q)
	}
	snap, err := r.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(snap), "quantile") {
		t.Fatalf("quantiles leaked into deterministic snapshot: %s", snap)
	}
	var text, prom strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "p50=") || !strings.Contains(text.String(), "p99=") {
		t.Fatalf("WriteText missing quantile fields:\n%s", text.String())
	}
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `redi_serve_latency_quantile{q="p99"}`) {
		t.Fatalf("Prometheus output missing quantile series:\n%s", prom.String())
	}
	if strings.Contains(prom.String(), `redi_det_sizes_quantile`) {
		t.Fatalf("Prometheus output has quantiles for deterministic histogram:\n%s", prom.String())
	}
}
