package bitmap

import (
	"testing"

	"redi/internal/rng"
)

// refSet is the boolean-slice reference implementation the kernels are
// cross-checked against.
type refSet []bool

func randomPair(r *rng.RNG, nbits int, density float64) (Bitmap, refSet) {
	b := New(nbits)
	ref := make(refSet, nbits)
	for i := 0; i < nbits; i++ {
		if r.Float64() < density {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

func refCount(ref refSet, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if ref[i] {
			n++
		}
	}
	return n
}

func TestSetGetCount(t *testing.T) {
	r := rng.New(1)
	for _, nbits := range []int{1, 7, 63, 64, 65, 128, 1000} {
		b, ref := randomPair(r, nbits, 0.3)
		for i := 0; i < nbits; i++ {
			if b.Get(i) != bool(ref[i]) {
				t.Fatalf("nbits=%d: bit %d = %v, want %v", nbits, i, b.Get(i), ref[i])
			}
		}
		if got, want := b.Count(), refCount(ref, 0, nbits); got != want {
			t.Fatalf("nbits=%d: Count = %d, want %d", nbits, got, want)
		}
	}
}

func TestKernelsMatchReference(t *testing.T) {
	r := rng.New(2)
	for round := 0; round < 50; round++ {
		nbits := 1 + r.Intn(500)
		a, ra := randomPair(r, nbits, 0.4)
		b, rb := randomPair(r, nbits, 0.4)

		wantAnd, wantAndNot := 0, 0
		for i := 0; i < nbits; i++ {
			if ra[i] && rb[i] {
				wantAnd++
			}
			if ra[i] && !rb[i] {
				wantAndNot++
			}
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Fatalf("round %d: AndCount = %d, want %d", round, got, wantAnd)
		}
		dst := New(nbits)
		if got := And(dst, a, b); got != wantAnd {
			t.Fatalf("round %d: And popcount = %d, want %d", round, got, wantAnd)
		}
		if got := dst.Count(); got != wantAnd {
			t.Fatalf("round %d: And result count = %d, want %d", round, got, wantAnd)
		}
		for i := 0; i < nbits; i++ {
			if dst.Get(i) != (ra[i] && rb[i]) {
				t.Fatalf("round %d: And bit %d wrong", round, i)
			}
		}
		if got := AndNot(dst, a, b); got != wantAndNot {
			t.Fatalf("round %d: AndNot popcount = %d, want %d", round, got, wantAndNot)
		}
		for i := 0; i < nbits; i++ {
			if dst.Get(i) != (ra[i] && !rb[i]) {
				t.Fatalf("round %d: AndNot bit %d wrong", round, i)
			}
		}
	}
}

func TestOrMatchesReference(t *testing.T) {
	r := rng.New(7)
	for round := 0; round < 50; round++ {
		nbits := 1 + r.Intn(500)
		a, ra := randomPair(r, nbits, 0.4)
		b, rb := randomPair(r, nbits, 0.4)
		want := 0
		for i := 0; i < nbits; i++ {
			if ra[i] || rb[i] {
				want++
			}
		}
		dst := New(nbits)
		if got := Or(dst, a, b); got != want {
			t.Fatalf("round %d: Or popcount = %d, want %d", round, got, want)
		}
		for i := 0; i < nbits; i++ {
			if dst.Get(i) != (ra[i] || rb[i]) {
				t.Fatalf("round %d: Or bit %d wrong", round, i)
			}
		}
		// Aliased form: dst == a.
		if got := Or(a, a, b); got != want {
			t.Fatalf("round %d: aliased Or = %d, want %d", round, got, want)
		}
		if a.Count() != want {
			t.Fatalf("round %d: aliased Or result count = %d, want %d", round, a.Count(), want)
		}
	}
	// Or fully overwrites a dirty destination.
	dirty := New(130)
	for i := range dirty {
		dirty[i] = ^uint64(0)
	}
	a, b := New(130), New(130)
	a.Set(3)
	b.Set(127)
	if got := Or(dirty, a, b); got != 2 || dirty.Count() != 2 {
		t.Fatalf("Or on dirty dst = %d bits (count %d), want 2", got, dirty.Count())
	}
}

func TestForEach(t *testing.T) {
	r := rng.New(8)
	for _, nbits := range []int{0, 1, 63, 64, 65, 300} {
		b, ref := randomPair(r, nbits, 0.3)
		var got []int
		b.ForEach(func(i int) { got = append(got, i) })
		var want []int
		for i := 0; i < nbits; i++ {
			if ref[i] {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("nbits=%d: ForEach visited %d bits, want %d", nbits, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nbits=%d: ForEach order wrong at %d: %d vs %d", nbits, i, got[i], want[i])
			}
		}
	}
}

func TestAndAliasesDst(t *testing.T) {
	r := rng.New(3)
	a, ra := randomPair(r, 200, 0.5)
	b, rb := randomPair(r, 200, 0.5)
	want := 0
	for i := range ra {
		if ra[i] && rb[i] {
			want++
		}
	}
	if got := And(a, a, b); got != want {
		t.Fatalf("aliased And = %d, want %d", got, want)
	}
	if got := a.Count(); got != want {
		t.Fatalf("aliased And result = %d, want %d", got, want)
	}
}

func TestCountRange(t *testing.T) {
	r := rng.New(4)
	for round := 0; round < 50; round++ {
		nbits := 1 + r.Intn(400)
		b, ref := randomPair(r, nbits, 0.3)
		for trial := 0; trial < 20; trial++ {
			lo := r.Intn(nbits + 1)
			hi := r.Intn(nbits + 1)
			if lo > hi {
				lo, hi = hi, lo
			}
			if got, want := b.CountRange(lo, hi), refCount(ref, lo, hi); got != want {
				t.Fatalf("round %d: CountRange(%d, %d) = %d, want %d (nbits=%d)",
					round, lo, hi, got, want, nbits)
			}
		}
		if got := b.CountRange(0, nbits); got != b.Count() {
			t.Fatalf("full CountRange %d != Count %d", got, b.Count())
		}
	}
}

// TestWordKernelsMatchReference cross-checks the external-word-slice kernels
// (CountWords / CountRangeWords / AndCountFrom) against the boolean-slice
// reference. The word slice is the raw []uint64 view of a bitmap — exactly
// what a mapped column page looks like to the kernels — and AndCountFrom is
// additionally checked with a longer word slice whose trailing words must
// not participate.
func TestWordKernelsMatchReference(t *testing.T) {
	r := rng.New(9)
	for round := 0; round < 60; round++ {
		nbits := 1 + r.Intn(600)
		a, ra := randomPair(r, nbits, 0.4)
		b, rb := randomPair(r, nbits, 0.4)
		words := []uint64(b)

		if got, want := CountWords(words), refCount(rb, 0, nbits); got != want {
			t.Fatalf("round %d: CountWords = %d, want %d", round, got, want)
		}
		for trial := 0; trial < 20; trial++ {
			lo := r.Intn(nbits + 1)
			hi := r.Intn(nbits + 1)
			if lo > hi {
				lo, hi = hi, lo
			}
			if got, want := CountRangeWords(words, lo, hi), refCount(rb, lo, hi); got != want {
				t.Fatalf("round %d: CountRangeWords(%d, %d) = %d, want %d (nbits=%d)",
					round, lo, hi, got, want, nbits)
			}
		}

		wantAnd := 0
		for i := 0; i < nbits; i++ {
			if ra[i] && rb[i] {
				wantAnd++
			}
		}
		if got := AndCountFrom(a, words); got != wantAnd {
			t.Fatalf("round %d: AndCountFrom = %d, want %d", round, got, wantAnd)
		}
		longer := append(append([]uint64(nil), words...), ^uint64(0), ^uint64(0))
		if got := AndCountFrom(a, longer); got != wantAnd {
			t.Fatalf("round %d: AndCountFrom over longer words = %d, want %d", round, got, wantAnd)
		}
		if got, want := AndCountFrom(b, []uint64(b)), b.Count(); got != want {
			t.Fatalf("round %d: self AndCountFrom = %d, want %d", round, got, want)
		}
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for nbits, want := range cases {
		if got := WordsFor(nbits); got != want {
			t.Fatalf("WordsFor(%d) = %d, want %d", nbits, got, want)
		}
	}
}

func TestPoolRecyclesAndIsOverwriteSafe(t *testing.T) {
	p := NewPool(130)
	b := p.Get()
	if len(b) != WordsFor(130) {
		t.Fatalf("pool bitmap has %d words, want %d", len(b), WordsFor(130))
	}
	// Dirty the scratch, return it, and verify a fused kernel fully
	// overwrites whatever comes back out.
	for i := range b {
		b[i] = ^uint64(0)
	}
	p.Put(b)
	a, bb := New(130), New(130)
	a.Set(5)
	bb.Set(5)
	bb.Set(77)
	dst := p.Get()
	if got := And(dst, a, bb); got != 1 {
		t.Fatalf("And on recycled scratch = %d, want 1", got)
	}
	if dst.Count() != 1 || !dst.Get(5) {
		t.Fatal("recycled scratch not fully overwritten")
	}
	// Wrong-size bitmaps are dropped, not pooled.
	p.Put(New(10))
}

// TestPoolPutWrongSizeContract pins Put's wrong-size policy: the bitmap is
// dropped (never handed back out by a later Get), and the OnSizeMismatch
// debug hook observes the drop with the offending and expected word counts.
func TestPoolPutWrongSizeContract(t *testing.T) {
	p := NewPool(130)
	var gotCalls [][2]int
	p.OnSizeMismatch = func(got, want int) { gotCalls = append(gotCalls, [2]int{got, want}) }

	p.Put(New(10))   // too short
	p.Put(New(4096)) // too long
	p.Put(nil)       // degenerate
	if want := [][2]int{
		{WordsFor(10), WordsFor(130)},
		{WordsFor(4096), WordsFor(130)},
		{0, WordsFor(130)},
	}; len(gotCalls) != len(want) {
		t.Fatalf("OnSizeMismatch fired %d times, want %d", len(gotCalls), len(want))
	} else {
		for i := range want {
			if gotCalls[i] != want[i] {
				t.Fatalf("OnSizeMismatch call %d = %v, want %v", i, gotCalls[i], want[i])
			}
		}
	}

	// Correct-size Puts never fire the hook, and every Get after the
	// wrong-size Puts still returns exactly the pool's size.
	n := len(gotCalls)
	for i := 0; i < 8; i++ {
		b := p.Get()
		if len(b) != WordsFor(130) {
			t.Fatalf("Get returned %d words after wrong-size Puts, want %d", len(b), WordsFor(130))
		}
		p.Put(b)
	}
	if len(gotCalls) != n {
		t.Fatalf("OnSizeMismatch fired on correct-size Puts")
	}
}
