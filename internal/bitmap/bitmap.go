// Package bitmap provides word-packed bitsets with fused
// intersection/popcount kernels and a pooled scratch allocator. It is the
// counting substrate of the coverage hot paths: a pattern's row set is a
// Bitmap, counting matches is an AND + popcount over machine words instead
// of a per-row scan, and the DFS over the pattern lattice refines a
// parent's bitmap into each child with a single kernel call.
//
// The kernels are written as straight-line 4-way-unrolled loops over
// []uint64 so the compiler can keep the words in registers and issue
// hardware popcounts (math/bits.OnesCount64); there is no per-bit work
// anywhere on the hot path. All operations are pure functions of their
// inputs — nothing here reads a clock, a map order, or a global RNG — so
// results are bit-identical across runs and worker counts (the determinism
// contract, see DESIGN.md).
package bitmap

import (
	"math/bits"
	"sync"
)

const wordBits = 64

// Bitmap is a fixed-capacity bitset packed into 64-bit words. Bit i lives
// in word i/64 at position i%64. Operations that combine bitmaps require
// equal lengths; they panic (via bounds checks) otherwise.
type Bitmap []uint64

// WordsFor returns the number of words needed to hold nbits bits.
func WordsFor(nbits int) int {
	return (nbits + wordBits - 1) / wordBits
}

// New returns a zeroed bitmap with capacity for nbits bits.
func New(nbits int) Bitmap {
	return make(Bitmap, WordsFor(nbits))
}

// Set sets bit i.
func (b Bitmap) Set(i int) {
	b[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	return b[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	i := 0
	for ; i+4 <= len(b); i += 4 {
		n += bits.OnesCount64(b[i]) + bits.OnesCount64(b[i+1]) +
			bits.OnesCount64(b[i+2]) + bits.OnesCount64(b[i+3])
	}
	for ; i < len(b); i++ {
		n += bits.OnesCount64(b[i])
	}
	return n
}

// And stores a ∩ b into dst and returns the popcount of the result in the
// same pass. dst may alias a or b.
//
//redi:hotpath word kernel; the inner loop of every bitmap-backed count and scan
func And(dst, a, b Bitmap) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		w0 := a[i] & b[i]
		w1 := a[i+1] & b[i+1]
		w2 := a[i+2] & b[i+2]
		w3 := a[i+3] & b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = w0, w1, w2, w3
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(a); i++ {
		w := a[i] & b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNot stores a ∖ b (a AND NOT b) into dst and returns the popcount of
// the result. dst may alias a or b.
//
//redi:hotpath word kernel; the inner loop of every bitmap-backed count and scan
func AndNot(dst, a, b Bitmap) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		w0 := a[i] &^ b[i]
		w1 := a[i+1] &^ b[i+1]
		w2 := a[i+2] &^ b[i+2]
		w3 := a[i+3] &^ b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = w0, w1, w2, w3
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(a); i++ {
		w := a[i] &^ b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// Or stores a ∪ b into dst and returns the popcount of the result in the
// same pass. dst may alias a or b.
//
//redi:hotpath word kernel; the inner loop of every bitmap-backed count and scan
func Or(dst, a, b Bitmap) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		w0 := a[i] | b[i]
		w1 := a[i+1] | b[i+1]
		w2 := a[i+2] | b[i+2]
		w3 := a[i+3] | b[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = w0, w1, w2, w3
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(a); i++ {
		w := a[i] | b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for each set bit in ascending order, hopping between set
// bits with trailing-zero counts so sparse bitmaps cost proportional to
// their popcount, not their capacity.
func (b Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AndCount returns |a ∩ b| without materializing the intersection — the
// kernel for counting a two-constraint pattern straight from its two
// precomputed value bitmaps.
//
//redi:hotpath word kernel; the inner loop of every bitmap-backed count and scan
func AndCount(a, b Bitmap) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&b[i]) + bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) + bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// CountRange returns the number of set bits in [lo, hi). The factorized
// join-space stores each join key's rows as a contiguous bit range, so a
// per-key pattern count is one masked popcount over that range.
func (b Bitmap) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - (uint(hi-1) % wordBits))
	if loW == hiW {
		return bits.OnesCount64(b[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(b[loW] & loMask)
	for i := loW + 1; i < hiW; i++ {
		n += bits.OnesCount64(b[i])
	}
	return n + bits.OnesCount64(b[hiW]&hiMask)
}

// The *Words kernels below operate on external []uint64 word slices —
// word-packed bit data that does not live in a Bitmap the caller built,
// such as validity bitmaps cast straight off mmap'd column pages
// (internal/colfile). Bitmap is []uint64 underneath, so the conversions are
// free: no copy, no allocation; the kernels run directly on the mapped
// memory. Callers guarantee the usual layout invariant (bit i of the
// logical range lives in word i/64 at position i%64, trailing bits zero).

// CountWords returns the number of set bits in an external word slice.
//
//redi:hotpath word kernel over mapped pages; null-rate counting reads it per partition
func CountWords(words []uint64) int {
	return Bitmap(words).Count()
}

// CountRangeWords returns the number of set bits in bit range [lo, hi) of
// an external word slice — Bitmap.CountRange for mapped pages.
//
//redi:hotpath word kernel over mapped pages; per-key factor counts read it per range
func CountRangeWords(words []uint64, lo, hi int) int {
	return Bitmap(words).CountRange(lo, hi)
}

// AndCountFrom returns |a ∩ words| without materializing the intersection.
// words may be longer than a (a mapped page can cover more words than the
// query bitmap); only the first len(a) words participate.
//
//redi:hotpath word kernel over mapped pages; fused AND+popcount per partition
func AndCountFrom(a Bitmap, words []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&words[i]) + bits.OnesCount64(a[i+1]&words[i+1]) +
			bits.OnesCount64(a[i+2]&words[i+2]) + bits.OnesCount64(a[i+3]&words[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] & words[i])
	}
	return n
}

// Grow returns a bitmap with capacity for nbits bits whose first len(b)
// words are b's. It is the ingest path's extend-in-place primitive: when the
// word count is unchanged the receiver comes back untouched, when spare
// capacity exists the slice is extended over it (new words zeroed — spare
// capacity may hold stale data from a previous realloc), and only when the
// backing array is exhausted does it allocate, with doubling growth so a
// stream of appends costs amortized O(1) words per row instead of a full
// realloc+copy per batch. The layout invariant is preserved: bit i stays in
// word i/64, and every bit at or above the old length reads 0.
//
// Callers that share bitmaps across goroutines must not Grow concurrently
// with readers; the serving layer serializes Grow under its ingest lock.
func (b Bitmap) Grow(nbits int) Bitmap {
	w := WordsFor(nbits)
	if w <= len(b) {
		return b
	}
	if w <= cap(b) {
		nb := b[:w]
		for i := len(b); i < w; i++ {
			nb[i] = 0
		}
		return nb
	}
	c := 2 * len(b)
	if c < w {
		c = w
	}
	nb := make(Bitmap, w, c)
	copy(nb, b)
	return nb
}

// AppendWords appends whole 64-bit words — 64-row blocks — to b and returns
// the extended bitmap. It is the bulk form of Grow for word-aligned
// producers (partition ingest, validity words streamed off column pages):
// appending words keeps PR 8's alignment invariant that a 64-row-multiple
// prefix owns exactly its leading words, so partition-parallel writers stay
// disjoint. The receiver must itself be word-full (its bit length a multiple
// of 64); the appended words land immediately after it.
func AppendWords(b Bitmap, words ...uint64) Bitmap {
	nb := b.Grow((len(b) + len(words)) * wordBits)
	copy(nb[len(b):], words)
	return nb
}

// Pool hands out scratch bitmaps of a fixed word length so the lattice DFS
// and ad-hoc counts allocate only on first use per goroutine. A bitmap
// obtained from Get carries arbitrary stale bits: every kernel above fully
// overwrites its destination, so callers never need to clear scratch. Pool
// is safe for concurrent use (sync.Pool underneath) and does not affect
// determinism — pooled memory is write-before-read by construction.
type Pool struct {
	words int
	pool  sync.Pool
	// OnSizeMismatch, when non-nil, observes every Put of a wrong-length
	// bitmap (got and want are word counts). A wrong-sized Put is always a
	// caller bug — the bitmap came from another pool or was re-sliced —
	// and the production policy is to drop it rather than poison the pool,
	// which also silently forfeits the reuse the caller expected. The hook
	// lets tests and debug builds turn that silent drop into a loud
	// failure. Set it before the pool is shared; the field itself is not
	// synchronized.
	OnSizeMismatch func(got, want int)
}

// NewPool returns a pool of bitmaps sized for nbits bits.
func NewPool(nbits int) *Pool {
	p := &Pool{words: WordsFor(nbits)}
	p.pool.New = func() any {
		b := make(Bitmap, p.words)
		return &b
	}
	return p
}

// Get returns a scratch bitmap of the pool's size with undefined contents.
func (p *Pool) Get() Bitmap {
	return *(p.pool.Get().(*Bitmap))
}

// Put returns a bitmap to the pool. Bitmaps of the wrong length are
// dropped rather than poisoning the pool (a later Get must always return
// exactly the pool's size); OnSizeMismatch, when set, observes each drop.
func (p *Pool) Put(b Bitmap) {
	if len(b) != p.words {
		if p.OnSizeMismatch != nil {
			p.OnSizeMismatch(len(b), p.words)
		}
		return
	}
	p.pool.Put(&b)
}
