package bitmap

import (
	"testing"

	"redi/internal/rng"
)

// TestGrowPreservesAndZeroes grows bitmaps through randomized schedules of
// extensions and cross-checks every state against a bitmap rebuilt from the
// reference rows — the rebuild-from-rows oracle.
func TestGrowPreservesAndZeroes(t *testing.T) {
	r := rng.New(11)
	for round := 0; round < 60; round++ {
		n := 1 + r.Intn(200)
		b, ref := randomPair(r, n, 0.4)
		for step := 0; step < 8; step++ {
			grow := 1 + r.Intn(150)
			n += grow
			b = b.Grow(n)
			if len(b) != WordsFor(n) {
				t.Fatalf("round %d: Grow(%d) len = %d words, want %d", round, n, len(b), WordsFor(n))
			}
			// New tail rows must read 0 before being set.
			for i := len(ref); i < n; i++ {
				if b.Get(i) {
					t.Fatalf("round %d: bit %d set after Grow without Set", round, i)
				}
			}
			for i := 0; i < grow; i++ {
				set := r.Float64() < 0.4
				ref = append(ref, set)
				if set {
					b.Set(len(ref) - 1)
				}
			}
			// Rebuild-from-rows oracle: a fresh bitmap set from ref must be
			// word-identical to the grown one.
			fresh := New(n)
			for i, set := range ref {
				if set {
					fresh.Set(i)
				}
			}
			if len(fresh) != len(b) {
				t.Fatalf("round %d: word count %d vs rebuilt %d", round, len(b), len(fresh))
			}
			for w := range fresh {
				if fresh[w] != b[w] {
					t.Fatalf("round %d: word %d = %#x, rebuild has %#x", round, w, b[w], fresh[w])
				}
			}
		}
	}
}

// TestGrowSameWordsIsIdentity pins the cheap path: growing within the
// current word count must return the receiver unchanged.
func TestGrowSameWordsIsIdentity(t *testing.T) {
	b := New(100) // 2 words, covers up to 128 bits
	b.Set(99)
	g := b.Grow(128)
	if &g[0] != &b[0] || len(g) != len(b) {
		t.Fatalf("Grow within word capacity must be identity")
	}
}

// TestGrowReusesSpareCapacity pins the in-place path: after one allocating
// Grow leaves spare capacity, subsequent grows extend over it without
// reallocating — and zero the stale words the spare region may hold.
func TestGrowReusesSpareCapacity(t *testing.T) {
	b := New(64)
	b.Set(0)
	b = b.Grow(128) // realloc: len 2, cap >= 2 (doubling)
	if cap(b) < 2 {
		t.Fatalf("expected doubling capacity, cap = %d", cap(b))
	}
	// Poison spare capacity, then grow into it.
	spare := b[:cap(b)]
	for i := len(b); i < cap(b); i++ {
		spare[i] = ^uint64(0)
	}
	before := &b[0]
	b = b.Grow(cap(b) * 64)
	if &b[0] != before {
		t.Fatalf("Grow within capacity must not reallocate")
	}
	for i := 2; i < len(b); i++ {
		if b[i] != 0 {
			t.Fatalf("word %d not zeroed on in-place Grow: %#x", i, b[i])
		}
	}
	if !b.Get(0) {
		t.Fatalf("prefix lost on Grow")
	}
}

// TestAppendWords cross-checks word-aligned appends against the
// rebuild-from-rows oracle and pins the 64-row word-alignment invariant:
// appended words land exactly after the existing prefix.
func TestAppendWords(t *testing.T) {
	r := rng.New(12)
	for round := 0; round < 40; round++ {
		words := 1 + r.Intn(6)
		b, ref := randomPair(r, words*64, 0.3)
		for step := 0; step < 5; step++ {
			k := 1 + r.Intn(4)
			add := make([]uint64, k)
			for i := range add {
				add[i] = r.Uint64()
			}
			b = AppendWords(b, add...)
			for _, w := range add {
				for bit := 0; bit < 64; bit++ {
					ref = append(ref, w&(1<<uint(bit)) != 0)
				}
			}
			if len(b)*64 != len(ref) {
				t.Fatalf("round %d: %d words for %d rows", round, len(b), len(ref))
			}
			fresh := New(len(ref))
			for i, set := range ref {
				if set {
					fresh.Set(i)
				}
			}
			for w := range fresh {
				if fresh[w] != b[w] {
					t.Fatalf("round %d step %d: word %d = %#x, rebuild has %#x", round, step, w, b[w], fresh[w])
				}
			}
		}
	}
}
