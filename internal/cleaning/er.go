package cleaning

import (
	"fmt"
	"sort"

	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/parallel"
)

// ERConfig parameterizes entity resolution over a dataset of records.
type ERConfig struct {
	// NameAttr is the categorical attribute compared for similarity.
	NameAttr string
	// TruthAttr optionally names the attribute holding the true entity
	// id (for evaluation only; resolution never reads it).
	TruthAttr string
	// BlockPrefix is the number of leading characters records must
	// share to be compared; larger values are more aggressive blocking
	// (cheaper, but recall suffers — unevenly across groups, which is
	// what experiment E14 measures). 0 compares all pairs.
	BlockPrefix int
	// Threshold is the minimum Jaro–Winkler similarity to declare a
	// match (default 0.9).
	Threshold float64
	// Workers bounds the goroutines used for candidate-pair comparison:
	// 0 (the zero value) keeps the serial path, parallel.Auto uses every
	// CPU. Results are bit-identical at any worker count.
	Workers int
	// Obs receives the resolution's operation counters (blocks, pairs
	// compared, matches, cluster-size histogram). Nil falls back to the
	// process-wide registry (obs.Enable). Per-block tallies already merge
	// in sorted block order, so the counters are worker-invariant.
	Obs *obs.Registry
}

// ERResult is the outcome of entity resolution: a cluster id per row and
// the number of candidate pairs compared.
type ERResult struct {
	Cluster       []int
	PairsCompared int
}

// ResolveEntities clusters the rows of d whose NameAttr values are similar:
// records are blocked by name prefix, pairs within a block are scored with
// Jaro–Winkler, and matching pairs are merged with union-find.
//
// Blocks are processed in sorted key order, so the cluster ids (union-find
// representatives) are a deterministic function of the input. With
// cfg.Workers set, pair comparison — the hot loop — is sharded across
// blocks; the matched pairs are merged into the union-find in block order,
// replaying the exact union sequence of the serial path, so the result is
// bit-identical at any worker count.
func ResolveEntities(d *dataset.Dataset, cfg ERConfig) (*ERResult, error) {
	if cfg.NameAttr == "" {
		return nil, fmt.Errorf("cleaning: ERConfig.NameAttr is required")
	}
	thresh := cfg.Threshold
	if thresh == 0 {
		thresh = 0.9
	}
	names := d.Strings(cfg.NameAttr)
	uf := newUnionFind(len(names))

	blocks := map[string][]int{}
	for i, n := range names {
		if n == "" {
			continue
		}
		key := ""
		if cfg.BlockPrefix > 0 {
			if len(n) < cfg.BlockPrefix {
				key = n
			} else {
				key = n[:cfg.BlockPrefix]
			}
		}
		blocks[key] = append(blocks[key], i)
	}
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type pair struct{ a, b int }
	type blockMatches struct {
		pairs    []pair
		compared int
	}
	matched := parallel.Map(cfg.Workers, keys, func(_ int, key string) blockMatches {
		rows := blocks[key]
		var m blockMatches
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				m.compared++
				if JaroWinkler(names[rows[a]], names[rows[b]]) >= thresh {
					m.pairs = append(m.pairs, pair{rows[a], rows[b]})
				}
			}
		}
		return m
	})
	res := &ERResult{}
	matches := 0
	for _, m := range matched {
		res.PairsCompared += m.compared
		matches += len(m.pairs)
		for _, p := range m.pairs {
			uf.union(p.a, p.b)
		}
	}
	res.Cluster = make([]int, len(names))
	for i := range names {
		res.Cluster[i] = uf.find(i)
	}
	if reg := obs.Active(cfg.Obs); reg != nil {
		reg.Counter("cleaning.er_runs").Inc()
		reg.Counter("cleaning.er_records").Add(int64(len(names)))
		reg.Counter("cleaning.er_blocks").Add(int64(len(keys)))
		reg.Counter("cleaning.er_pairs_compared").Add(int64(res.PairsCompared))
		reg.Counter("cleaning.er_matches").Add(int64(matches))
		h := reg.Histogram("cleaning.er_cluster_size", obs.ExpBounds(1, 12))
		for _, size := range ClusterSizes(res) {
			h.Observe(int64(size))
		}
	}
	return res, nil
}

// ERQuality is pairwise match quality, overall or within a group.
type ERQuality struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePairs int
}

// EvaluateER computes pairwise precision/recall/F1 of the clustering
// against the true entity ids in cfg.TruthAttr, overall and per demographic
// group (a pair belongs to a group when both records do). This is the
// fairness-aware ER audit of tutorial §5 ("Data Cleaning").
func EvaluateER(d *dataset.Dataset, cfg ERConfig, res *ERResult, sensitive []string) (overall ERQuality, byGroup map[dataset.GroupKey]ERQuality, err error) {
	if cfg.TruthAttr == "" {
		return overall, nil, fmt.Errorf("cleaning: EvaluateER requires TruthAttr")
	}
	truth := d.Strings(cfg.TruthAttr)
	var groups *dataset.Groups
	if len(sensitive) > 0 {
		groups = d.GroupBy(sensitive...)
	}
	type counts struct{ tp, fp, fn int }
	var total counts
	var byGid []counts // gid-aligned tallies; seen marks groups with pairs
	var seen []bool
	if groups != nil {
		byGid = make([]counts, groups.NumGroups())
		seen = make([]bool, groups.NumGroups())
	}
	upd := func(c *counts, same, pred bool) {
		switch {
		case same && pred:
			c.tp++
		case pred:
			c.fp++
		default:
			c.fn++
		}
	}
	n := d.NumRows()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			same := truth[a] != "" && truth[a] == truth[b]
			pred := res.Cluster[a] == res.Cluster[b]
			if !same && !pred {
				continue
			}
			upd(&total, same, pred)
			if groups != nil {
				if gi := groups.ByRow[a]; gi >= 0 && gi == groups.ByRow[b] {
					upd(&byGid[gi], same, pred)
					seen[gi] = true
				}
			}
		}
	}
	quality := func(c *counts) ERQuality {
		var q ERQuality
		q.TruePairs = c.tp + c.fn
		if c.tp+c.fp > 0 {
			q.Precision = float64(c.tp) / float64(c.tp+c.fp)
		}
		if c.tp+c.fn > 0 {
			q.Recall = float64(c.tp) / float64(c.tp+c.fn)
		}
		if q.Precision+q.Recall > 0 {
			q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
		}
		return q
	}
	overall = quality(&total)
	byGroup = map[dataset.GroupKey]ERQuality{}
	if groups != nil {
		for gi := range byGid {
			if seen[gi] {
				byGroup[groups.Key(gi)] = quality(&byGid[gi])
			}
		}
	}
	return overall, byGroup, nil
}

// unionFind is a standard disjoint-set forest with path halving.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Jaro returns the Jaro similarity of two strings in [0, 1].
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if !matchB[j] && a[i] == b[j] {
				matchA[i] = true
				matchB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity: Jaro boosted by shared
// prefix length (up to 4) with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Levenshtein returns the edit distance between two strings.
func Levenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// NormalizedLevenshtein returns 1 - edit distance / max length, a [0,1]
// similarity.
func NormalizedLevenshtein(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// ClusterSizes summarizes a resolution as sorted descending cluster sizes,
// useful in example output.
func ClusterSizes(res *ERResult) []int {
	count := map[int]int{}
	for _, c := range res.Cluster {
		count[c]++
	}
	sizes := make([]int, 0, len(count))
	for _, n := range count {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
