// Package cleaning implements the data-cleaning toolbox of tutorial §3.3
// and §5: missing-value imputation with a fairness audit (the imputation
// accuracy parity of Zhang & Long, NeurIPS 2021), statistical error
// detection, and entity resolution (blocking + similarity matching) with a
// per-group match-quality audit.
package cleaning

import (
	"fmt"
	"math"
	"sort"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// Imputer fills the nulls of one numeric attribute. Implementations never
// modify their input; they return a repaired copy.
type Imputer interface {
	// Name identifies the imputer in audit reports.
	Name() string
	// Impute returns a copy of d with nulls of attr filled.
	Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error)
}

// DropRows is resolution (i) of tutorial §2.4: delete every row with a null
// in the attribute. The section's warning is precisely that this erodes
// minority-group coverage; the audit quantifies it.
type DropRows struct{}

// Name implements Imputer.
func (DropRows) Name() string { return "drop-rows" }

// Impute implements Imputer.
func (DropRows) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	return d.Select(dataset.NotNull(attr)), nil
}

// MeanImputer is resolution (ii) of tutorial §2.4: replace nulls with the
// column mean — the value dominated by the majority group.
type MeanImputer struct{}

// Name implements Imputer.
func (MeanImputer) Name() string { return "mean" }

// Impute implements Imputer.
func (MeanImputer) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	vals, _ := d.Numeric(attr)
	if len(vals) == 0 {
		return nil, fmt.Errorf("cleaning: attribute %q has no observed values", attr)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return fillNulls(d, attr, func(int) float64 { return sum / float64(len(vals)) })
}

// MedianImputer replaces nulls with the column median, a robust variant of
// mean imputation.
type MedianImputer struct{}

// Name implements Imputer.
func (MedianImputer) Name() string { return "median" }

// Impute implements Imputer.
func (MedianImputer) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	vals, _ := d.Numeric(attr)
	if len(vals) == 0 {
		return nil, fmt.Errorf("cleaning: attribute %q has no observed values", attr)
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	return fillNulls(d, attr, func(int) float64 { return med })
}

// GroupMeanImputer replaces nulls with the mean of the row's demographic
// group, the group-conditional repair that the parity audit shows to be far
// fairer than global means. Rows outside any group fall back to the global
// mean.
type GroupMeanImputer struct {
	// Sensitive lists the grouping attributes.
	Sensitive []string
}

// Name implements Imputer.
func (g GroupMeanImputer) Name() string { return "group-mean" }

// Impute implements Imputer.
func (g GroupMeanImputer) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	vals, rows := d.Numeric(attr)
	if len(vals) == 0 {
		return nil, fmt.Errorf("cleaning: attribute %q has no observed values", attr)
	}
	groups := d.GroupBy(g.Sensitive...)
	sums := make([]float64, groups.NumGroups())
	counts := make([]float64, groups.NumGroups())
	var globalSum float64
	for i, row := range rows {
		globalSum += vals[i]
		if gi := groups.ByRow[row]; gi >= 0 {
			sums[gi] += vals[i]
			counts[gi]++
		}
	}
	globalMean := globalSum / float64(len(vals))
	return fillNulls(d, attr, func(row int) float64 {
		gi := groups.ByRow[row]
		if gi >= 0 && counts[gi] > 0 {
			return sums[gi] / counts[gi]
		}
		return globalMean
	})
}

// HotDeckImputer replaces each null with the value of a random observed
// donor row; with Sensitive set, donors are drawn from the same demographic
// group when possible.
type HotDeckImputer struct {
	Sensitive []string
	R         *rng.RNG
}

// Name implements Imputer.
func (h HotDeckImputer) Name() string { return "hot-deck" }

// Impute implements Imputer.
func (h HotDeckImputer) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	vals, rows := d.Numeric(attr)
	if len(vals) == 0 {
		return nil, fmt.Errorf("cleaning: attribute %q has no observed values", attr)
	}
	var groups *dataset.Groups
	var byGid [][]float64
	if len(h.Sensitive) > 0 {
		groups = d.GroupBy(h.Sensitive...)
		byGid = make([][]float64, groups.NumGroups())
		for i, row := range rows {
			if gi := groups.ByRow[row]; gi >= 0 {
				byGid[gi] = append(byGid[gi], vals[i])
			}
		}
	}
	return fillNulls(d, attr, func(row int) float64 {
		if groups != nil {
			if gi := groups.ByRow[row]; gi >= 0 {
				if pool := byGid[gi]; len(pool) > 0 {
					return pool[h.R.Intn(len(pool))]
				}
			}
		}
		return vals[h.R.Intn(len(vals))]
	})
}

// KNNImputer replaces each null with the mean of the K nearest observed
// rows under L2 distance on the given auxiliary numeric features.
type KNNImputer struct {
	K        int
	Features []string
}

// Name implements Imputer.
func (k KNNImputer) Name() string { return "knn" }

// Impute implements Imputer.
func (k KNNImputer) Impute(d *dataset.Dataset, attr string) (*dataset.Dataset, error) {
	if k.K <= 0 {
		return nil, fmt.Errorf("cleaning: knn imputer requires K > 0")
	}
	vals, rows := d.Numeric(attr)
	if len(vals) == 0 {
		return nil, fmt.Errorf("cleaning: attribute %q has no observed values", attr)
	}
	feats := make([][]float64, len(k.Features))
	nulls := make([][]bool, len(k.Features))
	for i, f := range k.Features {
		feats[i], nulls[i] = d.NumericFull(f)
	}
	vec := func(row int) ([]float64, bool) {
		x := make([]float64, len(feats))
		for i := range feats {
			if nulls[i][row] {
				return nil, false
			}
			x[i] = feats[i][row]
		}
		return x, true
	}
	// Donor set: rows with observed target and complete features.
	type donor struct {
		x []float64
		v float64
	}
	var donors []donor
	for i, row := range rows {
		if x, ok := vec(row); ok {
			donors = append(donors, donor{x: x, v: vals[i]})
		}
	}
	if len(donors) == 0 {
		return nil, fmt.Errorf("cleaning: no complete donor rows for knn imputation")
	}
	globalMean := 0.0
	for _, v := range vals {
		globalMean += v
	}
	globalMean /= float64(len(vals))

	return fillNulls(d, attr, func(row int) float64 {
		q, ok := vec(row)
		if !ok {
			return globalMean
		}
		// Partial selection of the K nearest donors.
		type cand struct {
			dist float64
			v    float64
		}
		cands := make([]cand, len(donors))
		for i, dn := range donors {
			s := 0.0
			for j := range q {
				diff := q[j] - dn.x[j]
				s += diff * diff
			}
			cands[i] = cand{dist: s, v: dn.v}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		kk := k.K
		if kk > len(cands) {
			kk = len(cands)
		}
		sum := 0.0
		for i := 0; i < kk; i++ {
			sum += cands[i].v
		}
		return sum / float64(kk)
	})
}

// fillNulls clones d and replaces each null of attr with fill(row). The
// null rows come from a compiled is-null mask — one fused scan over the
// column's null storage — visited in ascending row order.
func fillNulls(d *dataset.Dataset, attr string, fill func(row int) float64) (*dataset.Dataset, error) {
	out := d.Clone()
	cp, _ := dataset.CompilePredicate(d, dataset.IsNull(attr))
	var err error
	cp.SelectBitmap().ForEach(func(row int) {
		if err != nil {
			return
		}
		v := fill(row)
		if math.IsNaN(v) {
			err = fmt.Errorf("cleaning: imputer produced NaN at row %d", row)
			return
		}
		err = out.SetValue(row, attr, dataset.Num(v))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
