package cleaning

import (
	"math"
	"sort"

	"redi/internal/dataset"
)

// Detector flags suspicious rows of one numeric attribute.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Detect returns the row indices it flags, ascending.
	Detect(d *dataset.Dataset, attr string) []int
}

// ZScoreDetector flags values more than Threshold standard deviations from
// the mean (default 3).
type ZScoreDetector struct {
	Threshold float64
}

// Name implements Detector.
func (z ZScoreDetector) Name() string { return "zscore" }

// Detect implements Detector.
func (z ZScoreDetector) Detect(d *dataset.Dataset, attr string) []int {
	t := z.Threshold
	if t == 0 {
		t = 3
	}
	vals, rows := d.Numeric(attr)
	if len(vals) < 2 {
		return nil
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	sd := 0.0
	for _, v := range vals {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(vals)))
	if sd == 0 {
		return nil
	}
	var out []int
	for i, v := range vals {
		if math.Abs(v-mean)/sd > t {
			out = append(out, rows[i])
		}
	}
	return out
}

// IQRDetector flags values outside [Q1 - k·IQR, Q3 + k·IQR] (Tukey fences,
// default k = 1.5).
type IQRDetector struct {
	K float64
}

// Name implements Detector.
func (q IQRDetector) Name() string { return "iqr" }

// Detect implements Detector.
func (q IQRDetector) Detect(d *dataset.Dataset, attr string) []int {
	k := q.K
	if k == 0 {
		k = 1.5
	}
	vals, rows := d.Numeric(attr)
	if len(vals) < 4 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	q1 := sorted[len(sorted)/4]
	q3 := sorted[3*len(sorted)/4]
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	var out []int
	for i, v := range vals {
		if v < lo || v > hi {
			out = append(out, rows[i])
		}
	}
	return out
}

// DetectionQuality scores a detector's flagged rows against ground-truth
// corrupted rows: precision, recall, and F1. Empty denominators yield 0.
func DetectionQuality(flagged, truth []int) (precision, recall, f1 float64) {
	tset := make(map[int]bool, len(truth))
	for _, r := range truth {
		tset[r] = true
	}
	tp := 0
	for _, r := range flagged {
		if tset[r] {
			tp++
		}
	}
	if len(flagged) > 0 {
		precision = float64(tp) / float64(len(flagged))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
