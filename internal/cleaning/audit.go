package cleaning

import (
	"fmt"
	"math"

	"redi/internal/bitmap"
	"redi/internal/dataset"
)

// GroupError is one group's imputation accuracy.
type GroupError struct {
	Key  dataset.GroupKey
	N    int // imputed cells in the group
	RMSE float64
}

// ImputationAudit compares imputed values against ground truth on the cells
// that were masked, overall and per demographic group — the imputation
// accuracy parity analysis of Zhang & Long (NeurIPS 2021).
type ImputationAudit struct {
	Imputer string
	// N is the number of audited (masked, then imputed) cells.
	N int
	// RMSE is the overall root-mean-squared imputation error.
	RMSE float64
	// Groups holds per-group errors, aligned with the group index keys.
	Groups []GroupError
	// ParityDiff is the max-min spread of per-group RMSE: Zhang & Long's
	// imputation accuracy parity difference (0 = perfectly fair).
	ParityDiff float64
}

// AuditImputation measures how well imputed reconstructs truth on attr over
// exactly the rows that are null in masked but observed in truth, sliced by
// the sensitive attributes. DropRows-style imputers (which change the row
// count) cannot be audited this way; the function returns an error if the
// datasets' row counts differ.
func AuditImputation(name string, truth, masked, imputed *dataset.Dataset, attr string, sensitive []string) (*ImputationAudit, error) {
	if truth.NumRows() != masked.NumRows() || truth.NumRows() != imputed.NumRows() {
		return nil, fmt.Errorf("cleaning: audit requires aligned datasets (rows %d/%d/%d)",
			truth.NumRows(), masked.NumRows(), imputed.NumRows())
	}
	groups := truth.GroupBy(sensitive...)
	audit := &ImputationAudit{Imputer: name}
	sq := make([]float64, groups.NumGroups())
	n := make([]int, groups.NumGroups())
	totalSq := 0.0
	// Audited cells = (null in masked) ∩ (observed in truth): two compiled
	// null-mask scans fused with one AND kernel, visited in ascending row
	// order so the float accumulations stay bit-identical to the row loop.
	maskedNull, _ := dataset.CompilePredicate(masked, dataset.IsNull(attr))
	truthObserved, _ := dataset.CompilePredicate(truth, dataset.NotNull(attr))
	audited := bitmap.New(truth.NumRows())
	bitmap.And(audited, maskedNull.SelectBitmap(), truthObserved.SelectBitmap())
	var auditErr error
	audited.ForEach(func(row int) {
		if auditErr != nil {
			return
		}
		got := imputed.Value(row, attr)
		if got.Null {
			auditErr = fmt.Errorf("cleaning: imputed dataset still has a null at row %d", row)
			return
		}
		d := got.Num - truth.Value(row, attr).Num
		audit.N++
		totalSq += d * d
		if gi := groups.ByRow[row]; gi >= 0 {
			sq[gi] += d * d
			n[gi]++
		}
	})
	if auditErr != nil {
		return nil, auditErr
	}
	if audit.N > 0 {
		audit.RMSE = math.Sqrt(totalSq / float64(audit.N))
	}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for gi := 0; gi < groups.NumGroups(); gi++ {
		ge := GroupError{Key: groups.Key(gi), N: n[gi], RMSE: math.NaN()}
		if n[gi] > 0 {
			ge.RMSE = math.Sqrt(sq[gi] / float64(n[gi]))
			minR = math.Min(minR, ge.RMSE)
			maxR = math.Max(maxR, ge.RMSE)
		}
		audit.Groups = append(audit.Groups, ge)
	}
	if !math.IsInf(minR, 1) {
		audit.ParityDiff = maxR - minR
	}
	return audit, nil
}

// CoverageLoss reports, per group, the fraction of rows lost when cleaning
// shrinks a dataset (e.g. DropRows): the §2.4 observation that deletion
// repairs erode minority coverage. Both datasets must share the sensitive
// attributes.
func CoverageLoss(before, after *dataset.Dataset, sensitive []string) map[dataset.GroupKey]float64 {
	gb := before.GroupBy(sensitive...)
	ga := after.GroupBy(sensitive...)
	out := map[dataset.GroupKey]float64{}
	for gid, nb := range gb.Counts {
		if nb == 0 {
			continue
		}
		k := gb.Key(gid)
		out[k] = 1 - float64(ga.Count(k))/float64(nb)
	}
	return out
}
