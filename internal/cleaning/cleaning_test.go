package cleaning

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func maskedPopulation(t *testing.T, mech synth.Mechanism, seed uint64) (truth, masked *dataset.Dataset) {
	t.Helper()
	cfg := synth.DefaultPopulation(4000)
	cfg.GroupEffect = 2 // strong group-dependent feature means
	p := synth.Generate(cfg, rng.New(seed))
	mc := synth.MissingConfig{Attr: "f0", Rate: 0.25, Mech: mech, CondAttr: "race", CondValue: "black"}
	return p.Data, synth.InjectMissing(p.Data, mc, rng.New(seed+1))
}

func TestMeanImputerFillsAll(t *testing.T) {
	truth, masked := maskedPopulation(t, synth.MCAR, 1)
	imp, err := MeanImputer{}.Impute(masked, "f0")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < imp.NumRows(); r++ {
		if imp.IsNull(r, "f0") {
			t.Fatalf("null left at row %d", r)
		}
	}
	// Non-null cells must be untouched.
	for r := 0; r < imp.NumRows(); r++ {
		if !masked.IsNull(r, "f0") {
			if imp.Value(r, "f0").Num != masked.Value(r, "f0").Num {
				t.Fatalf("observed cell changed at row %d", r)
			}
		}
	}
	_ = truth
}

func TestDropRowsShrinks(t *testing.T) {
	_, masked := maskedPopulation(t, synth.MCAR, 2)
	out, err := DropRows{}.Impute(masked, "f0")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() >= masked.NumRows() {
		t.Fatal("DropRows did not remove rows")
	}
	for r := 0; r < out.NumRows(); r++ {
		if out.IsNull(r, "f0") {
			t.Fatal("DropRows left a null")
		}
	}
}

func TestCoverageLossSkewedUnderMAR(t *testing.T) {
	_, masked := maskedPopulation(t, synth.MAR, 3)
	dropped, err := DropRows{}.Impute(masked, "f0")
	if err != nil {
		t.Fatal(err)
	}
	loss := CoverageLoss(masked, dropped, []string{"race"})
	// MAR boosted missingness for race=black, so its coverage loss must
	// exceed the others'.
	black := loss["race=black"]
	for k, l := range loss {
		if k != "race=black" && black <= l {
			t.Fatalf("coverage loss not skewed: black=%v %s=%v", black, k, l)
		}
	}
}

func TestGroupMeanBeatsMeanOnParity(t *testing.T) {
	truth, masked := maskedPopulation(t, synth.MCAR, 4)
	sens := []string{"race", "sex"}

	mean, err := MeanImputer{}.Impute(masked, "f0")
	if err != nil {
		t.Fatal(err)
	}
	group, err := GroupMeanImputer{Sensitive: sens}.Impute(masked, "f0")
	if err != nil {
		t.Fatal(err)
	}
	aMean, err := AuditImputation("mean", truth, masked, mean, "f0", sens)
	if err != nil {
		t.Fatal(err)
	}
	aGroup, err := AuditImputation("group-mean", truth, masked, group, "f0", sens)
	if err != nil {
		t.Fatal(err)
	}
	if aMean.N == 0 || aGroup.N == 0 {
		t.Fatal("no audited cells")
	}
	if aGroup.RMSE >= aMean.RMSE {
		t.Fatalf("group-mean RMSE %v should beat mean %v under group effects", aGroup.RMSE, aMean.RMSE)
	}
	if aGroup.ParityDiff >= aMean.ParityDiff {
		t.Fatalf("group-mean parity %v should beat mean %v", aGroup.ParityDiff, aMean.ParityDiff)
	}
}

func TestMedianAndHotDeckAndKNN(t *testing.T) {
	truth, masked := maskedPopulation(t, synth.MCAR, 5)
	sens := []string{"race", "sex"}
	imputers := []Imputer{
		MedianImputer{},
		HotDeckImputer{Sensitive: sens, R: rng.New(6)},
		KNNImputer{K: 5, Features: []string{"f1", "f2", "f3"}},
	}
	for _, imp := range imputers {
		out, err := imp.Impute(masked, "f0")
		if err != nil {
			t.Fatalf("%s: %v", imp.Name(), err)
		}
		audit, err := AuditImputation(imp.Name(), truth, masked, out, "f0", sens)
		if err != nil {
			t.Fatalf("%s: %v", imp.Name(), err)
		}
		if audit.N == 0 {
			t.Fatalf("%s audited no cells", imp.Name())
		}
		if math.IsNaN(audit.RMSE) || audit.RMSE <= 0 {
			t.Fatalf("%s RMSE = %v", imp.Name(), audit.RMSE)
		}
		// All imputers should beat a wild guess: RMSE below 5 sigma.
		if audit.RMSE > 5 {
			t.Fatalf("%s RMSE implausibly high: %v", imp.Name(), audit.RMSE)
		}
	}
}

func TestKNNImputerValidation(t *testing.T) {
	_, masked := maskedPopulation(t, synth.MCAR, 7)
	if _, err := (KNNImputer{K: 0}).Impute(masked, "f0"); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestImputeEmptyColumn(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric}))
	d.MustAppendRow(dataset.NullValue(dataset.Numeric))
	if _, err := (MeanImputer{}).Impute(d, "x"); err == nil {
		t.Fatal("all-null column accepted")
	}
}

func TestAuditAlignment(t *testing.T) {
	truth, masked := maskedPopulation(t, synth.MCAR, 8)
	short := truth.Head(10)
	if _, err := AuditImputation("x", short, masked, masked, "f0", []string{"race"}); err == nil {
		t.Fatal("misaligned audit accepted")
	}
}

func TestZScoreDetector(t *testing.T) {
	p := synth.Generate(synth.DefaultPopulation(3000), rng.New(9))
	corrupted, truth := synth.InjectOutliers(p.Data, "f0", 0.02, 10, rng.New(10))
	flagged := ZScoreDetector{}.Detect(corrupted, "f0")
	prec, rec, f1 := DetectionQuality(flagged, truth)
	if prec < 0.7 || rec < 0.7 {
		t.Fatalf("zscore precision=%v recall=%v f1=%v", prec, rec, f1)
	}
}

func TestIQRDetector(t *testing.T) {
	p := synth.Generate(synth.DefaultPopulation(3000), rng.New(11))
	corrupted, truth := synth.InjectOutliers(p.Data, "f0", 0.02, 10, rng.New(12))
	flagged := IQRDetector{}.Detect(corrupted, "f0")
	_, rec, _ := DetectionQuality(flagged, truth)
	if rec < 0.8 {
		t.Fatalf("iqr recall = %v", rec)
	}
}

func TestDetectorsDegenerate(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric}))
	d.MustAppendRow(dataset.Num(1))
	if got := (ZScoreDetector{}).Detect(d, "x"); got != nil {
		t.Fatalf("tiny input flagged %v", got)
	}
	if got := (IQRDetector{}).Detect(d, "x"); got != nil {
		t.Fatalf("tiny input flagged %v", got)
	}
	p, r, f := DetectionQuality(nil, nil)
	if p != 0 || r != 0 || f != 0 {
		t.Fatal("empty quality should be zeros")
	}
}

func TestStringSimilarities(t *testing.T) {
	if Jaro("martha", "marhta") < 0.94 || Jaro("martha", "marhta") > 0.95 {
		t.Fatalf("Jaro(martha, marhta) = %v, want ~0.944", Jaro("martha", "marhta"))
	}
	if JaroWinkler("martha", "marhta") < 0.96 {
		t.Fatalf("JW = %v", JaroWinkler("martha", "marhta"))
	}
	if Jaro("abc", "abc") != 1 || Jaro("", "abc") != 0 {
		t.Fatal("Jaro edge cases wrong")
	}
	if Levenshtein("kitten", "sitting") != 3 {
		t.Fatalf("Levenshtein = %d", Levenshtein("kitten", "sitting"))
	}
	if NormalizedLevenshtein("", "") != 1 {
		t.Fatal("empty strings should be identical")
	}
	if NormalizedLevenshtein("abcd", "abcx") != 0.75 {
		t.Fatalf("NL = %v", NormalizedLevenshtein("abcd", "abcx"))
	}
}

// erDataset builds duplicated records with typos: each entity appears 2-3
// times; group attribute alternates.
func erDataset(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "entity", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "name", Kind: dataset.Categorical, Role: dataset.Feature},
		dataset.Attribute{Name: "group", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	names := []string{"anderson", "baptiste", "carmichael", "dimitriou", "eastwood",
		"fitzgerald", "gonzalez", "harrington", "ibrahimov", "jankowski"}
	for e, base := range names {
		group := "maj"
		if e%3 == 0 {
			group = "min"
		}
		copies := 2 + r.Intn(2)
		for c := 0; c < copies; c++ {
			name := base
			if c > 0 {
				// One-character perturbation.
				b := []byte(name)
				pos := 1 + r.Intn(len(b)-1)
				b[pos] = byte('a' + r.Intn(26))
				name = string(b)
			}
			d.MustAppendRow(dataset.Cat(names[e]), dataset.Cat(name), dataset.Cat(group))
		}
	}
	return d
}

func TestResolveEntities(t *testing.T) {
	d := erDataset(t, 13)
	cfg := ERConfig{NameAttr: "name", TruthAttr: "entity", BlockPrefix: 1, Threshold: 0.85}
	res, err := ResolveEntities(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsCompared == 0 {
		t.Fatal("no pairs compared")
	}
	overall, byGroup, err := EvaluateER(d, cfg, res, []string{"group"})
	if err != nil {
		t.Fatal(err)
	}
	if overall.F1 < 0.8 {
		t.Fatalf("overall F1 = %v", overall.F1)
	}
	if len(byGroup) == 0 {
		t.Fatal("no per-group quality")
	}
}

func TestBlockingAggressivenessHurtsRecall(t *testing.T) {
	d := erDataset(t, 14)
	loose := ERConfig{NameAttr: "name", TruthAttr: "entity", BlockPrefix: 0, Threshold: 0.85}
	tight := ERConfig{NameAttr: "name", TruthAttr: "entity", BlockPrefix: 4, Threshold: 0.85}
	resL, err := ResolveEntities(d, loose)
	if err != nil {
		t.Fatal(err)
	}
	resT, err := ResolveEntities(d, tight)
	if err != nil {
		t.Fatal(err)
	}
	if resT.PairsCompared >= resL.PairsCompared {
		t.Fatal("tighter blocking should compare fewer pairs")
	}
	qL, _, err := EvaluateER(d, loose, resL, nil)
	if err != nil {
		t.Fatal(err)
	}
	qT, _, err := EvaluateER(d, tight, resT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qT.Recall > qL.Recall {
		t.Fatalf("tight blocking recall %v > loose %v", qT.Recall, qL.Recall)
	}
}

func TestERValidation(t *testing.T) {
	d := erDataset(t, 15)
	if _, err := ResolveEntities(d, ERConfig{}); err == nil {
		t.Fatal("missing NameAttr accepted")
	}
	res, err := ResolveEntities(d, ERConfig{NameAttr: "name"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EvaluateER(d, ERConfig{NameAttr: "name"}, res, nil); err == nil {
		t.Fatal("missing TruthAttr accepted")
	}
}

func TestClusterSizes(t *testing.T) {
	res := &ERResult{Cluster: []int{0, 0, 1, 2, 2, 2}}
	sizes := ClusterSizes(res)
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}
