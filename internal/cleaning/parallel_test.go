package cleaning

import (
	"reflect"
	"testing"
)

// TestResolveEntitiesParallelDeterminism pins the determinism contract:
// ResolveEntities returns bit-identical cluster ids and pair counts at
// workers ∈ {1, 8}, for every blocking level, including exact equality of
// the union-find representatives (not just the induced partition).
func TestResolveEntitiesParallelDeterminism(t *testing.T) {
	d := erDataset(t, 21)
	for _, prefix := range []int{0, 1, 2, 4} {
		base := ERConfig{NameAttr: "name", TruthAttr: "entity", BlockPrefix: prefix, Threshold: 0.85}
		serial, err := ResolveEntities(d, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 8} {
			cfg := base
			cfg.Workers = w
			got, err := ResolveEntities(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.PairsCompared != serial.PairsCompared {
				t.Fatalf("prefix=%d workers=%d: pairs compared %d, serial %d", prefix, w, got.PairsCompared, serial.PairsCompared)
			}
			if !reflect.DeepEqual(got.Cluster, serial.Cluster) {
				t.Fatalf("prefix=%d workers=%d: cluster assignment diverged from serial", prefix, w)
			}
		}
	}
}

// TestResolveEntitiesRepeatable guards the sorted-block iteration: two
// serial runs over the same input produce identical representatives (the
// pre-PR code iterated a map, so representatives varied run to run).
func TestResolveEntitiesRepeatable(t *testing.T) {
	d := erDataset(t, 22)
	cfg := ERConfig{NameAttr: "name", BlockPrefix: 1, Threshold: 0.85}
	a, err := ResolveEntities(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResolveEntities(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cluster, b.Cluster) {
		t.Fatal("two serial runs produced different cluster representatives")
	}
}
