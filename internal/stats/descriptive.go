// Package stats implements the statistical measures that responsible data
// integration is audited with: distribution divergences (KL, JS, total
// variation), association measures (Pearson, Spearman, mutual information,
// Cramér's V), descriptive statistics, histograms, and the confidence
// intervals used by online aggregation.
//
// All functions are pure and operate on plain slices so that they can be
// applied both to raw columns and to derived quantities.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if len(xs) == 0.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (n-1 denominator), or
// NaN if len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs. It returns
// (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty slice
// and panics if q is outside [0, 1]. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: Quantile requires 0 <= q <= 1")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Normalize returns xs scaled to sum to 1. It panics if xs is empty, has a
// negative entry, or sums to zero; such inputs indicate a logic error in a
// caller that believes it holds a distribution.
func Normalize(xs []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Normalize of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x < 0 {
			panic("stats: Normalize with negative entry")
		}
		sum += x
	}
	if sum == 0 {
		panic("stats: Normalize with zero sum")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}

// Entropy returns the Shannon entropy (in nats) of the distribution p.
// Zero-probability entries contribute zero. p is assumed normalized.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}
