package stats

import "math"

// KLDivergence returns the Kullback–Leibler divergence D(p ‖ q) in nats.
// Both inputs must be distributions of the same length. Entries where
// p[i] > 0 but q[i] == 0 contribute +Inf, mirroring the mathematical
// definition; callers that need a finite value should smooth q first (see
// Smooth). It panics if the lengths differ.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	if d < 0 {
		// Round-off on near-identical distributions.
		return 0
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence between p and q in
// nats. It is symmetric, finite, and bounded by ln 2.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JSDivergence length mismatch")
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return (KLDivergence(p, m) + KLDivergence(q, m)) / 2
}

// TotalVariation returns the total-variation distance between p and q:
// half the L1 distance. It panics if the lengths differ.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}

// Smooth returns p with Laplace smoothing applied: every entry receives an
// additive eps mass and the result is renormalized. Use before KLDivergence
// when q may have empty cells.
func Smooth(p []float64, eps float64) []float64 {
	out := make([]float64, len(p))
	for i, x := range p {
		out[i] = x + eps
	}
	return Normalize(out)
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts. Cells with zero expectation and zero observation are
// skipped; a cell with zero expectation but positive observation yields
// +Inf. It panics if lengths differ.
func ChiSquare(observed, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: ChiSquare length mismatch")
	}
	s := 0.0
	for i := range observed {
		if expected[i] == 0 {
			if observed[i] != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := observed[i] - expected[i]
		s += d * d / expected[i]
	}
	return s
}
