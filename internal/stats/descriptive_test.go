package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); !almostEq(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if sv := SampleVariance(xs); !almostEq(sv, 32.0/7, 1e-12) {
		t.Fatalf("SampleVariance = %v, want %v", sv, 32.0/7)
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Fatal("SampleVariance of single element should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatal("MinMax(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("Q1 = %v, want 4", q)
	}
	if q := Median(xs); q != 2.5 {
		t.Fatalf("median = %v, want 2.5", q)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(q=2) did not panic")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("Normalize = %v", p)
	}
	for name, in := range map[string][]float64{"empty": {}, "negative": {1, -1}, "zero": {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Normalize(%s) did not panic", name)
				}
			}()
			Normalize(in)
		}()
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{0.5, 0.5}); !almostEq(h, math.Ln2, 1e-12) {
		t.Fatalf("Entropy(uniform2) = %v, want ln2", h)
	}
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("Entropy(point mass) = %v, want 0", h)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if d := KLDivergence(p, q); !almostEq(d, want, 1e-12) {
		t.Fatalf("KL = %v, want %v", d, want)
	}
	if d := KLDivergence(p, p); d != 0 {
		t.Fatalf("KL(p,p) = %v, want 0", d)
	}
	if d := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Fatalf("KL with empty support = %v, want +Inf", d)
	}
}

func TestJSDivergenceBounds(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d := JSDivergence(p, q); !almostEq(d, math.Ln2, 1e-12) {
		t.Fatalf("JS(disjoint) = %v, want ln2", d)
	}
	if d := JSDivergence(p, p); d != 0 {
		t.Fatalf("JS(p,p) = %v, want 0", d)
	}
}

func TestTotalVariation(t *testing.T) {
	if d := TotalVariation([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("TV(disjoint) = %v, want 1", d)
	}
	if d := TotalVariation([]float64{0.4, 0.6}, []float64{0.5, 0.5}); !almostEq(d, 0.1, 1e-12) {
		t.Fatalf("TV = %v, want 0.1", d)
	}
}

func TestSmoothRemovesZeros(t *testing.T) {
	q := Smooth([]float64{1, 0, 0}, 0.01)
	for i, x := range q {
		if x <= 0 {
			t.Fatalf("Smooth left non-positive mass at %d: %v", i, q)
		}
	}
	if d := KLDivergence([]float64{0.2, 0.4, 0.4}, q); math.IsInf(d, 1) {
		t.Fatal("KL against smoothed q should be finite")
	}
}

func TestChiSquare(t *testing.T) {
	if s := ChiSquare([]float64{10, 10}, []float64{10, 10}); s != 0 {
		t.Fatalf("chi2 = %v, want 0", s)
	}
	if s := ChiSquare([]float64{5}, []float64{0}); !math.IsInf(s, 1) {
		t.Fatalf("chi2 zero-expectation = %v, want +Inf", s)
	}
}

// Property: TV is symmetric and within [0, 1] for random distributions.
func TestTVProperty(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		p := make([]float64, 4)
		q := make([]float64, 4)
		for i := 0; i < 4; i++ {
			p[i] = float64(a[i]) + 1
			q[i] = float64(b[i]) + 1
		}
		p, q = Normalize(p), Normalize(q)
		d1, d2 := TotalVariation(p, q), TotalVariation(q, p)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: KL(p, p) == 0 and KL >= 0 for strictly positive distributions.
func TestKLNonNegativityProperty(t *testing.T) {
	f := func(a, b [5]uint8) bool {
		p := make([]float64, 5)
		q := make([]float64, 5)
		for i := 0; i < 5; i++ {
			p[i] = float64(a[i]) + 1
			q[i] = float64(b[i]) + 1
		}
		p, q = Normalize(p), Normalize(q)
		return KLDivergence(p, q) >= 0 && KLDivergence(p, p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
