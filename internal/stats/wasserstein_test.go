package stats

import (
	"testing"
	"testing/quick"
)

func TestWasserstein1(t *testing.T) {
	// Point masses one bin apart: W1 = 1.
	if d := Wasserstein1([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("W1 adjacent = %v", d)
	}
	// Point masses three bins apart: W1 = 3 (TV would still be 1 —
	// the whole reason to use W1 on ordinal supports).
	if d := Wasserstein1([]float64{1, 0, 0, 0}, []float64{0, 0, 0, 1}); d != 3 {
		t.Fatalf("W1 far = %v", d)
	}
	p := []float64{0.25, 0.25, 0.25, 0.25}
	if d := Wasserstein1(p, p); d != 0 {
		t.Fatalf("W1 self = %v", d)
	}
}

func TestWasserstein1Symmetric(t *testing.T) {
	f := func(a, b [5]uint8) bool {
		p := make([]float64, 5)
		q := make([]float64, 5)
		for i := 0; i < 5; i++ {
			p[i] = float64(a[i]) + 1
			q[i] = float64(b[i]) + 1
		}
		p, q = Normalize(p), Normalize(q)
		d1, d2 := Wasserstein1(p, q), Wasserstein1(q, p)
		return almostEq(d1, d2, 1e-12) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPSI(t *testing.T) {
	p := []float64{0.5, 0.5}
	if s := PSI(p, p); s != 0 {
		t.Fatalf("PSI self = %v", s)
	}
	shifted := PSI([]float64{0.5, 0.5}, []float64{0.9, 0.1})
	if shifted < 0.25 {
		t.Fatalf("major shift PSI = %v, want > 0.25", shifted)
	}
	mild := PSI([]float64{0.5, 0.5}, []float64{0.55, 0.45})
	if mild > 0.1 {
		t.Fatalf("mild shift PSI = %v, want < 0.1", mild)
	}
	// Zero cells stay finite thanks to smoothing.
	if s := PSI([]float64{1, 0}, []float64{0, 1}); s <= 0 || s > 100 {
		t.Fatalf("disjoint PSI = %v", s)
	}
}

func TestWassersteinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Wasserstein1([]float64{1}, []float64{0.5, 0.5})
}
