package stats

import (
	"fmt"
	"math"
)

// Histogram is an equi-width histogram over a fixed numeric range. It is the
// discretization used when distribution requirements are stated over
// continuous attributes.
type Histogram struct {
	Min, Max float64
	Counts   []float64
	total    float64
}

// NewHistogram creates a histogram with the given number of bins spanning
// [min, max]. It panics if bins <= 0 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if max <= min {
		panic("stats: NewHistogram requires max > min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]float64, bins)}
}

// Bin returns the bin index for x. Values below Min clamp to bin 0 and
// values at or above Max clamp to the last bin.
func (h *Histogram) Bin(x float64) int {
	if x <= h.Min {
		return 0
	}
	if x >= h.Max {
		return len(h.Counts) - 1
	}
	b := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records one observation of x.
func (h *Histogram) Add(x float64) {
	h.Counts[h.Bin(x)]++
	h.total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() float64 { return h.total }

// PMF returns the normalized bin mass. An empty histogram yields the uniform
// distribution, the least-informative prior.
func (h *Histogram) PMF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / h.total
	}
	return out
}

// String renders a compact textual bar chart, used by the CLI profiler.
func (h *Histogram) String() string {
	const width = 30
	maxC := 0.0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	s := ""
	binW := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = int(math.Round(c / maxC * width))
		}
		s += fmt.Sprintf("[%8.3g,%8.3g) %6.0f |%s\n", h.Min+float64(i)*binW, h.Min+float64(i+1)*binW, c, repeat('#', bar))
	}
	return s
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}

// Discretize maps each value in xs to its equi-width bin index over the
// observed min/max of xs, a convenience for feeding continuous columns into
// categorical association measures. Constant columns map to bin 0.
func Discretize(xs []float64, bins int) []int {
	if bins <= 0 {
		panic("stats: Discretize requires bins > 0")
	}
	min, max := MinMax(xs)
	out := make([]int, len(xs))
	if len(xs) == 0 || min == max || math.IsNaN(min) {
		return out
	}
	h := NewHistogram(min, max, bins)
	for i, x := range xs {
		out[i] = h.Bin(x)
	}
	return out
}
