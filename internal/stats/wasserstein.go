package stats

import "math"

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between
// two distributions over the same *ordered* support with unit spacing:
// the sum of absolute differences of their CDFs. Unlike TV or KL, it
// respects the ordering of bins, which makes it the right distance for
// distribution requirements over ordinal attributes (tutorial §2.2,
// Asudeh et al. SIGMOD'21 setting). It panics on length mismatch.
func Wasserstein1(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: Wasserstein1 length mismatch")
	}
	d, cdf := 0.0, 0.0
	for i := range p {
		cdf += p[i] - q[i]
		d += math.Abs(cdf)
	}
	return d
}

// PSI returns the population stability index between an expected and an
// observed distribution: Σ (obs−exp)·ln(obs/exp), with additive smoothing
// so empty cells stay finite. PSI is the industry-standard drift score the
// Scope-of-use requirement (§2.5) asks labels to monitor: < 0.1 is stable,
// 0.1–0.25 moderate drift, > 0.25 major drift. It panics on length
// mismatch.
func PSI(expected, observed []float64) float64 {
	if len(expected) != len(observed) {
		panic("stats: PSI length mismatch")
	}
	const eps = 1e-4
	e := Smooth(expected, eps)
	o := Smooth(observed, eps)
	s := 0.0
	for i := range e {
		s += (o[i] - e[i]) * math.Log(o[i]/e[i])
	}
	if s < 0 {
		return 0
	}
	return s
}
