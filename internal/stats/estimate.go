package stats

import "math"

// Estimator accumulates a stream of observations and reports a running mean
// with a CLT-based confidence interval. Online aggregation over join samples
// (ripple join, wander join) reports its estimates through this type.
type Estimator struct {
	n    float64
	mean float64
	m2   float64 // sum of squared deviations (Welford)
}

// Add records one observation.
func (e *Estimator) Add(x float64) {
	e.n++
	d := x - e.mean
	e.mean += d / e.n
	e.m2 += d * (x - e.mean)
}

// N returns the number of observations.
func (e *Estimator) N() float64 { return e.n }

// Mean returns the running mean, or NaN before any observation.
func (e *Estimator) Mean() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.mean
}

// Variance returns the running sample variance, or NaN with fewer than two
// observations.
func (e *Estimator) Variance() float64 {
	if e.n < 2 {
		return math.NaN()
	}
	return e.m2 / (e.n - 1)
}

// CI returns the half-width of the confidence interval on the mean at the
// given confidence level (e.g. 0.95), using the normal approximation. It
// returns +Inf with fewer than two observations.
func (e *Estimator) CI(level float64) float64 {
	if e.n < 2 {
		return math.Inf(1)
	}
	z := NormalQuantile(0.5 + level/2)
	return z * math.Sqrt(e.Variance()/e.n)
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9). It panics if p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// RelativeError returns |est-truth| / |truth|, or |est| when truth == 0.
// Experiment harnesses report estimator quality with it.
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}
