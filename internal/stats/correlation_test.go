package stats

import (
	"math"
	"testing"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstant(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("Pearson with constant input = %v, want 0", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // nonlinear but monotone
	if r := Spearman(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestContingencyIndependent(t *testing.T) {
	// Perfectly independent 2x2 table.
	xs := []int{0, 0, 1, 1}
	ys := []int{0, 1, 0, 1}
	ct := NewContingencyTable(xs, ys, 2, 2)
	if chi := ct.ChiSquareStat(); chi != 0 {
		t.Fatalf("chi2 = %v, want 0", chi)
	}
	if v := ct.CramersV(); v != 0 {
		t.Fatalf("V = %v, want 0", v)
	}
	if mi := ct.MutualInformation(); !almostEq(mi, 0, 1e-12) {
		t.Fatalf("MI = %v, want 0", mi)
	}
}

func TestContingencyPerfectAssociation(t *testing.T) {
	xs := []int{0, 0, 1, 1, 2, 2}
	ct := NewContingencyTable(xs, xs, 3, 3)
	if v := ct.CramersV(); !almostEq(v, 1, 1e-9) {
		t.Fatalf("V = %v, want 1", v)
	}
	// MI of identical variables equals the entropy: ln 3.
	if mi := ct.MutualInformation(); !almostEq(mi, math.Log(3), 1e-9) {
		t.Fatalf("MI = %v, want ln3", mi)
	}
	if nmi := ct.NormalizedMI(); !almostEq(nmi, 1, 1e-9) {
		t.Fatalf("NMI = %v, want 1", nmi)
	}
}

func TestContingencyMarginals(t *testing.T) {
	ct := NewContingencyTable([]int{0, 0, 1}, []int{1, 1, 0}, 2, 2)
	rows, cols := ct.Marginals()
	if rows[0] != 2 || rows[1] != 1 || cols[0] != 1 || cols[1] != 2 {
		t.Fatalf("marginals = %v %v", rows, cols)
	}
}

func TestContingencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range category did not panic")
		}
	}()
	NewContingencyTable([]int{5}, []int{0}, 2, 2)
}

func TestEmptyTableDegenerate(t *testing.T) {
	ct := NewContingencyTable(nil, nil, 2, 2)
	if ct.CramersV() != 0 || ct.MutualInformation() != 0 || ct.NormalizedMI() != 0 {
		t.Fatal("empty table should report zero association")
	}
}

func TestPointBiserial(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 11, 12}
	ys := []int{0, 0, 0, 1, 1, 1}
	if r := PointBiserial(xs, ys); r < 0.9 {
		t.Fatalf("PointBiserial = %v, want near 1", r)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1, 2.5, 5, 9.99, 10, -3})
	if h.Total() != 7 {
		t.Fatalf("Total = %v, want 7", h.Total())
	}
	// -3 clamps to bin 0, 10 clamps to last bin.
	if h.Counts[0] != 3 { // 0, 1, -3
		t.Fatalf("bin0 = %v, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 10
		t.Fatalf("bin4 = %v, want 2", h.Counts[4])
	}
	pmf := h.PMF()
	sum := 0.0
	for _, p := range pmf {
		sum += p
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("PMF sum = %v", sum)
	}
}

func TestHistogramEmptyPMFUniform(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, p := range h.PMF() {
		if p != 0.25 {
			t.Fatalf("empty PMF = %v, want uniform", h.PMF())
		}
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.5, 1.5, 1.6})
	if s := h.String(); len(s) == 0 {
		t.Fatal("String returned empty")
	}
}

func TestDiscretize(t *testing.T) {
	bins := Discretize([]float64{0, 5, 10}, 2)
	if bins[0] != 0 || bins[2] != 1 {
		t.Fatalf("Discretize = %v", bins)
	}
	constant := Discretize([]float64{3, 3, 3}, 4)
	for _, b := range constant {
		if b != 0 {
			t.Fatalf("Discretize(constant) = %v, want zeros", constant)
		}
	}
	if out := Discretize(nil, 3); len(out) != 0 {
		t.Fatalf("Discretize(nil) = %v", out)
	}
}

func TestEstimatorConverges(t *testing.T) {
	var e Estimator
	if !math.IsNaN(e.Mean()) {
		t.Fatal("empty estimator mean should be NaN")
	}
	if !math.IsInf(e.CI(0.95), 1) {
		t.Fatal("empty estimator CI should be +Inf")
	}
	for i := 0; i < 1000; i++ {
		e.Add(float64(i % 10))
	}
	if !almostEq(e.Mean(), 4.5, 1e-9) {
		t.Fatalf("mean = %v, want 4.5", e.Mean())
	}
	if e.N() != 1000 {
		t.Fatalf("N = %v", e.N())
	}
	ciWide := e.CI(0.99)
	ciNarrow := e.CI(0.9)
	if ciWide <= ciNarrow {
		t.Fatalf("CI(0.99)=%v should exceed CI(0.9)=%v", ciWide, ciNarrow)
	}
}

func TestNormalQuantile(t *testing.T) {
	if q := NormalQuantile(0.5); !almostEq(q, 0, 1e-9) {
		t.Fatalf("Q(0.5) = %v, want 0", q)
	}
	if q := NormalQuantile(0.975); !almostEq(q, 1.959964, 1e-5) {
		t.Fatalf("Q(0.975) = %v, want 1.96", q)
	}
	if q := NormalQuantile(0.025); !almostEq(q, -1.959964, 1e-5) {
		t.Fatalf("Q(0.025) = %v, want -1.96", q)
	}
	if q := NormalQuantile(0.001); !almostEq(q, -3.090232, 1e-4) {
		t.Fatalf("Q(0.001) = %v, want -3.09", q)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(110, 100); !almostEq(e, 0.1, 1e-12) {
		t.Fatalf("RelativeError = %v, want 0.1", e)
	}
	if e := RelativeError(5, 0); e != 5 {
		t.Fatalf("RelativeError(truth=0) = %v, want 5", e)
	}
}
