package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation of xs and ys, a
// value in [-1, 1]. It returns 0 when either input is constant (the
// correlation is undefined; 0 is the conventional "no linear association"
// answer for feature ranking). It panics if the lengths differ or are zero.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		panic("stats: Pearson of empty input")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation of xs and ys, computed as the
// Pearson correlation of ranks with ties assigned their average rank.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs: equal values receive the
// average of the ranks they occupy.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// ContingencyTable is a cross-tabulation of two categorical variables, the
// common input to chi-square, Cramér's V, and mutual information.
type ContingencyTable struct {
	Counts [][]float64 // Counts[i][j]: co-occurrences of x-category i and y-category j
	Total  float64
}

// NewContingencyTable cross-tabulates the paired category indices xs and ys,
// where xs[i] in [0, kx) and ys[i] in [0, ky). It panics on length mismatch
// or out-of-range category.
func NewContingencyTable(xs, ys []int, kx, ky int) *ContingencyTable {
	if len(xs) != len(ys) {
		panic("stats: contingency table length mismatch")
	}
	t := &ContingencyTable{Counts: make([][]float64, kx)}
	for i := range t.Counts {
		t.Counts[i] = make([]float64, ky)
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] >= kx || ys[i] < 0 || ys[i] >= ky {
			panic("stats: contingency table category out of range")
		}
		t.Counts[xs[i]][ys[i]]++
		t.Total++
	}
	return t
}

// Marginals returns the row and column marginal counts.
func (t *ContingencyTable) Marginals() (rows, cols []float64) {
	rows = make([]float64, len(t.Counts))
	if len(t.Counts) > 0 {
		cols = make([]float64, len(t.Counts[0]))
	}
	for i, row := range t.Counts {
		for j, c := range row {
			rows[i] += c
			cols[j] += c
		}
	}
	return rows, cols
}

// ChiSquareStat returns the chi-square statistic of independence for the
// table. An empty table yields 0.
func (t *ContingencyTable) ChiSquareStat() float64 {
	if t.Total == 0 {
		return 0
	}
	rows, cols := t.Marginals()
	s := 0.0
	for i, row := range t.Counts {
		for j, obs := range row {
			exp := rows[i] * cols[j] / t.Total
			if exp == 0 {
				continue
			}
			d := obs - exp
			s += d * d / exp
		}
	}
	return s
}

// CramersV returns Cramér's V association measure in [0, 1] for the table,
// the standard measure of association between a candidate feature and a
// sensitive attribute. Degenerate tables (a single row or column, or no
// data) yield 0.
func (t *ContingencyTable) CramersV() float64 {
	r := len(t.Counts)
	if r == 0 || t.Total == 0 {
		return 0
	}
	c := len(t.Counts[0])
	k := r
	if c < k {
		k = c
	}
	if k < 2 {
		return 0
	}
	chi2 := t.ChiSquareStat()
	v := math.Sqrt(chi2 / (t.Total * float64(k-1)))
	if v > 1 {
		v = 1
	}
	return v
}

// MutualInformation returns the mutual information (in nats) between the two
// variables of the table. An empty table yields 0.
func (t *ContingencyTable) MutualInformation() float64 {
	if t.Total == 0 {
		return 0
	}
	rows, cols := t.Marginals()
	mi := 0.0
	for i, row := range t.Counts {
		for j, c := range row {
			if c == 0 {
				continue
			}
			pxy := c / t.Total
			px := rows[i] / t.Total
			py := cols[j] / t.Total
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	if mi < 0 {
		return 0
	}
	return mi
}

// NormalizedMI returns mutual information scaled by the smaller of the two
// marginal entropies, yielding a value in [0, 1]; 0 for degenerate tables.
func (t *ContingencyTable) NormalizedMI() float64 {
	rows, cols := t.Marginals()
	if t.Total == 0 {
		return 0
	}
	hr := Entropy(Normalize(safeCounts(rows)))
	hc := Entropy(Normalize(safeCounts(cols)))
	h := hr
	if hc < h {
		h = hc
	}
	if h == 0 {
		return 0
	}
	v := t.MutualInformation() / h
	if v > 1 {
		v = 1
	}
	return v
}

func safeCounts(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		out := make([]float64, len(xs))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	return xs
}

// PointBiserial returns the correlation between a binary variable (0/1 in
// ys) and a continuous variable xs; it equals the Pearson correlation.
func PointBiserial(xs []float64, ys []int) float64 {
	f := make([]float64, len(ys))
	for i, y := range ys {
		f[i] = float64(y)
	}
	return Pearson(xs, f)
}
