// Package debias implements open-world sample debiasing (tutorial §5,
// "Fairness-aware Query Answering"; Orr, Balazinska, Suciu — Themis, SIGMOD
// 2020): the database is treated as a *biased sample* of an underlying
// population, and aggregate queries are answered as if issued on the true
// population by reweighting tuples.
//
// Two estimators are provided: post-stratification, which weights each
// demographic group by its known population share, and raking (iterative
// proportional fitting), which matches several attribute marginals
// simultaneously when the joint population distribution is unknown — the
// classical survey-statistics technique §2.1 points to for non-random
// response.
package debias

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"redi/internal/dataset"
)

// Weights are per-row reweighting factors aligned with a dataset's rows;
// rows excluded from weighting (null group cells) carry weight 0.
type Weights []float64

// PostStratify computes post-stratification weights for d: each row of
// group g gets weight popShare(g) / sampleShare(g), so weighted group
// masses match the population. population maps group keys to population
// shares (normalized internally). Groups present in the sample but absent
// from population get weight 0 (they do not exist in the target
// population); population groups absent from the sample are unrepairable
// and reported as an error.
func PostStratify(d *dataset.Dataset, attrs []string, population map[dataset.GroupKey]float64) (Weights, error) {
	if len(population) == 0 {
		return nil, errors.New("debias: empty population distribution")
	}
	groups := d.GroupBy(attrs...)
	// Sorted keys keep the float total (and which unrepairable group is
	// reported first) bit-identical across runs (maporder).
	keys := dataset.SortedKeys(population)
	total := 0.0
	for _, k := range keys {
		p := population[k]
		if p < 0 {
			return nil, errors.New("debias: negative population share")
		}
		total += p
	}
	if total == 0 {
		return nil, errors.New("debias: zero population mass")
	}
	sampled := 0
	for _, c := range groups.Counts {
		sampled += c
	}
	if sampled == 0 {
		return nil, errors.New("debias: no grouped rows in sample")
	}
	// factor is gid-aligned; sample groups absent from population keep 0.
	factor := make([]float64, groups.NumGroups())
	for _, k := range keys {
		want := population[k] / total
		gid := groups.GID(k)
		got := 0.0
		if gid >= 0 {
			got = float64(groups.Counts[gid]) / float64(sampled)
		}
		if got == 0 {
			if want > 0 {
				return nil, fmt.Errorf("debias: population group %s absent from sample", k)
			}
			continue
		}
		factor[gid] = want / got
	}
	w := make(Weights, d.NumRows())
	for r := 0; r < d.NumRows(); r++ {
		gi := groups.ByRow[r]
		if gi < 0 {
			continue
		}
		w[r] = factor[gi]
	}
	return w, nil
}

// Marginal is a known population marginal over one categorical attribute.
type Marginal struct {
	Attr string
	// Share maps attribute values to population shares (normalized
	// internally).
	Share map[string]float64
}

// Rake computes weights matching several attribute marginals at once by
// iterative proportional fitting: weights start at 1 and are alternately
// rescaled to satisfy each marginal until the worst marginal error drops
// below tol or maxIter is reached. Rows with a null in any raked attribute
// get weight 0. It returns an error when a population value is absent from
// the sample.
func Rake(d *dataset.Dataset, marginals []Marginal, tol float64, maxIter int) (Weights, error) {
	if len(marginals) == 0 {
		return nil, errors.New("debias: no marginals")
	}
	if tol <= 0 {
		tol = 1e-6
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	n := d.NumRows()
	w := make(Weights, n)
	vals := make([][]string, len(marginals))
	shares := make([]map[string]float64, len(marginals))
	// order fixes each marginal's value iteration order: raking rescales
	// in value order, so sorted values keep the fitted weights and the
	// convergence trace bit-identical across runs (maporder).
	order := make([][]string, len(marginals))
	for mi, m := range marginals {
		vals[mi] = d.Strings(m.Attr)
		order[mi] = make([]string, 0, len(m.Share))
		for v := range m.Share {
			order[mi] = append(order[mi], v)
		}
		sort.Strings(order[mi])
		total := 0.0
		for _, v := range order[mi] {
			p := m.Share[v]
			if p < 0 {
				return nil, errors.New("debias: negative marginal share")
			}
			total += p
		}
		if total == 0 {
			return nil, fmt.Errorf("debias: marginal %s has zero mass", m.Attr)
		}
		shares[mi] = make(map[string]float64, len(m.Share))
		for v, p := range m.Share {
			shares[mi][v] = p / total
		}
	}
	// Eligible rows: non-null in every raked attribute and value known
	// to every marginal.
	for r := 0; r < n; r++ {
		ok := true
		for mi := range marginals {
			v := vals[mi][r]
			if v == "" {
				ok = false
				break
			}
			if _, known := shares[mi][v]; !known {
				ok = false
				break
			}
		}
		if ok {
			w[r] = 1
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		worst := 0.0
		for mi := range marginals {
			// Current weighted marginal.
			mass := map[string]float64{}
			total := 0.0
			for r := 0; r < n; r++ {
				if w[r] > 0 {
					mass[vals[mi][r]] += w[r]
					total += w[r]
				}
			}
			if total == 0 {
				return nil, errors.New("debias: no eligible rows")
			}
			for _, v := range order[mi] {
				want := shares[mi][v]
				got := mass[v] / total
				if got == 0 {
					if want > 0 {
						return nil, fmt.Errorf("debias: value %s=%s absent from sample", marginals[mi].Attr, v)
					}
					continue
				}
				ratio := want / got
				if e := math.Abs(ratio - 1); e > worst {
					worst = e
				}
				for r := 0; r < n; r++ {
					if w[r] > 0 && vals[mi][r] == v {
						w[r] *= ratio
					}
				}
			}
		}
		if worst < tol {
			break
		}
	}
	return w, nil
}

// WeightedCount estimates the population fraction of rows matching p:
// Σ_match w / Σ w. Compilable predicates evaluate vectorized: the matching
// row-set comes back as a bitmap and only its set bits are visited for the
// numerator (ascending row order, so the float sum is deterministic).
func WeightedCount(d *dataset.Dataset, w Weights, p dataset.Predicate) float64 {
	den := 0.0
	for r := 0; r < d.NumRows(); r++ {
		den += w[r]
	}
	if den == 0 {
		return 0
	}
	num := 0.0
	if cp, ok := dataset.CompilePredicate(d, p); ok {
		cp.SelectBitmap().ForEach(func(r int) {
			if w[r] > 0 {
				num += w[r]
			}
		})
	} else {
		for r := 0; r < d.NumRows(); r++ {
			if w[r] > 0 && p.Match(d, r) {
				num += w[r]
			}
		}
	}
	return num / den
}

// WeightedMean estimates the population mean of the numeric attribute:
// Σ w·x / Σ w over non-null cells.
func WeightedMean(d *dataset.Dataset, w Weights, attr string) float64 {
	vals, rows := d.Numeric(attr)
	num, den := 0.0, 0.0
	for i, r := range rows {
		num += w[r] * vals[i]
		den += w[r]
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// NaiveMean is the unweighted sample mean, the biased baseline.
func NaiveMean(d *dataset.Dataset, attr string) float64 {
	vals, _ := d.Numeric(attr)
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
