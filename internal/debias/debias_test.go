package debias

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// biasedSample builds a sample where group "b" (whose metric runs higher)
// is under-represented 1:9 although the population is 1:1.
func biasedSample(t *testing.T, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "metric", Kind: dataset.Numeric, Role: dataset.Feature},
	))
	for i := 0; i < n; i++ {
		grp, mean := "a", 10.0
		if i%10 == 0 {
			grp, mean = "b", 20.0
		}
		// Sex independent of group so joint support is full (required
		// for raking to be well-posed).
		sex := "F"
		if r.Bool(0.5) {
			sex = "M"
		}
		d.MustAppendRow(dataset.Cat(grp), dataset.Cat(sex), dataset.Num(r.Normal(mean, 1)))
	}
	return d
}

func TestPostStratifyCorrectsMean(t *testing.T) {
	d := biasedSample(t, 5000, 1)
	// True population: 50/50 -> population mean 15.
	pop := map[dataset.GroupKey]float64{"grp=a": 0.5, "grp=b": 0.5}
	w, err := PostStratify(d, []string{"grp"}, pop)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveMean(d, "metric")
	weighted := WeightedMean(d, w, "metric")
	if math.Abs(naive-11) > 0.3 {
		t.Fatalf("naive mean = %v, want ~11 (biased)", naive)
	}
	if math.Abs(weighted-15) > 0.3 {
		t.Fatalf("weighted mean = %v, want ~15", weighted)
	}
	// Weighted group share matches the population.
	share := WeightedCount(d, w, dataset.Eq("grp", "b"))
	if math.Abs(share-0.5) > 1e-9 {
		t.Fatalf("weighted share of b = %v", share)
	}
}

func TestPostStratifyErrors(t *testing.T) {
	d := biasedSample(t, 100, 2)
	if _, err := PostStratify(d, []string{"grp"}, nil); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := PostStratify(d, []string{"grp"}, map[dataset.GroupKey]float64{"grp=a": -1}); err == nil {
		t.Fatal("negative share accepted")
	}
	if _, err := PostStratify(d, []string{"grp"}, map[dataset.GroupKey]float64{"grp=zzz": 1}); err == nil {
		t.Fatal("unrepresented population group accepted")
	}
}

func TestRakeMatchesBothMarginals(t *testing.T) {
	d := biasedSample(t, 8000, 3)
	marginals := []Marginal{
		{Attr: "grp", Share: map[string]float64{"a": 0.5, "b": 0.5}},
		{Attr: "sex", Share: map[string]float64{"F": 0.7, "M": 0.3}},
	}
	w, err := Rake(d, marginals, 1e-8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if gb := WeightedCount(d, w, dataset.Eq("grp", "b")); math.Abs(gb-0.5) > 1e-4 {
		t.Fatalf("raked grp=b share = %v", gb)
	}
	if f := WeightedCount(d, w, dataset.Eq("sex", "F")); math.Abs(f-0.7) > 1e-4 {
		t.Fatalf("raked sex=F share = %v", f)
	}
	// The raked mean moves toward the population value.
	if m := WeightedMean(d, w, "metric"); math.Abs(m-15) > 0.5 {
		t.Fatalf("raked mean = %v, want ~15", m)
	}
}

func TestRakeErrors(t *testing.T) {
	d := biasedSample(t, 100, 4)
	if _, err := Rake(d, nil, 0, 0); err == nil {
		t.Fatal("no marginals accepted")
	}
	if _, err := Rake(d, []Marginal{{Attr: "grp", Share: map[string]float64{"zzz": 1}}}, 0, 0); err == nil {
		t.Fatal("unrepresented value accepted")
	}
	if _, err := Rake(d, []Marginal{{Attr: "grp", Share: map[string]float64{}}}, 0, 0); err == nil {
		t.Fatal("zero-mass marginal accepted")
	}
}

func TestRakeSkipsNullRows(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical},
		dataset.Attribute{Name: "x", Kind: dataset.Numeric},
	))
	d.MustAppendRow(dataset.Cat("a"), dataset.Num(1))
	d.MustAppendRow(dataset.Cat("b"), dataset.Num(2))
	d.MustAppendRow(dataset.NullValue(dataset.Categorical), dataset.Num(99))
	w, err := Rake(d, []Marginal{{Attr: "grp", Share: map[string]float64{"a": 0.5, "b": 0.5}}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w[2] != 0 {
		t.Fatalf("null row weighted: %v", w)
	}
	if m := WeightedMean(d, w, "x"); math.Abs(m-1.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestWeightedDegenerate(t *testing.T) {
	d := biasedSample(t, 10, 5)
	w := make(Weights, d.NumRows()) // all zero
	if got := WeightedCount(d, w, dataset.Eq("grp", "a")); got != 0 {
		t.Fatalf("zero-weight count = %v", got)
	}
	if m := WeightedMean(d, w, "metric"); !math.IsNaN(m) {
		t.Fatalf("zero-weight mean = %v", m)
	}
}
