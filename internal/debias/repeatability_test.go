package debias

import (
	"testing"

	"redi/internal/dataset"
)

// Raking and post-stratification accumulate float totals over share maps;
// before the maporder sweep the low bits (and raking's rescale order)
// followed Go's randomized map iteration. Every repetition must now
// produce bit-identical weights.
func TestWeightsRepeatable(t *testing.T) {
	d := biasedSample(t, 2000, 5)
	pop := map[dataset.GroupKey]float64{"grp=a": 0.31, "grp=b": 0.69}
	marginals := []Marginal{
		{Attr: "grp", Share: map[string]float64{"a": 0.31, "b": 0.69}},
		{Attr: "sex", Share: map[string]float64{"F": 0.55, "M": 0.45}},
	}
	firstPS, err := PostStratify(d, []string{"grp"}, pop)
	if err != nil {
		t.Fatal(err)
	}
	firstRake, err := Rake(d, marginals, 1e-9, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 50; i++ {
		ps, err := PostStratify(d, []string{"grp"}, pop)
		if err != nil {
			t.Fatal(err)
		}
		rk, err := Rake(d, marginals, 1e-9, 50)
		if err != nil {
			t.Fatal(err)
		}
		for r := range firstPS {
			if ps[r] != firstPS[r] {
				t.Fatalf("run %d: PostStratify weight[%d] = %v, want %v", i, r, ps[r], firstPS[r])
			}
		}
		for r := range firstRake {
			if rk[r] != firstRake[r] {
				t.Fatalf("run %d: Rake weight[%d] = %v, want %v", i, r, rk[r], firstRake[r])
			}
		}
	}
}
