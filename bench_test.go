// Package redi's root benchmark harness: one testing.B benchmark per
// experiment table (E1–E18, see DESIGN.md and EXPERIMENTS.md) plus
// throughput micro-benchmarks for the performance-critical substrates.
// Regenerate every table with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks report the wall time of regenerating the full
// table; the table contents themselves are printed by cmd/experiments.
package redi

import (
	"testing"

	"redi/internal/coverage"
	"redi/internal/discovery"
	"redi/internal/dt"
	"redi/internal/experiments"
	"redi/internal/joinsample"
	"redi/internal/rng"
	"redi/internal/synth"
)

func benchExperiment(b *testing.B, run func(seed uint64) *experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := run(uint64(i) + 1)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1DTKnown(b *testing.B)      { benchExperiment(b, experiments.E1DTKnown) }
func BenchmarkE2DTUnknown(b *testing.B)    { benchExperiment(b, experiments.E2DTUnknown) }
func BenchmarkE3Coverage(b *testing.B)     { benchExperiment(b, experiments.E3Coverage) }
func BenchmarkE4JoinSampling(b *testing.B) { benchExperiment(b, experiments.E4JoinSampling) }
func BenchmarkE5OnlineAgg(b *testing.B)    { benchExperiment(b, experiments.E5OnlineAgg) }
func BenchmarkE6Discovery(b *testing.B)    { benchExperiment(b, experiments.E6Discovery) }
func BenchmarkE7Imputation(b *testing.B)   { benchExperiment(b, experiments.E7Imputation) }
func BenchmarkE8FairRange(b *testing.B)    { benchExperiment(b, experiments.E8FairRange) }
func BenchmarkE9SliceTuner(b *testing.B)   { benchExperiment(b, experiments.E9SliceTuner) }
func BenchmarkE10Crowd(b *testing.B)       { benchExperiment(b, experiments.E10Crowd) }
func BenchmarkE11Market(b *testing.B)      { benchExperiment(b, experiments.E11Market) }
func BenchmarkE12EndToEnd(b *testing.B)    { benchExperiment(b, experiments.E12EndToEnd) }
func BenchmarkE13Remedy(b *testing.B)      { benchExperiment(b, experiments.E13Remedy) }
func BenchmarkE14ER(b *testing.B)          { benchExperiment(b, experiments.E14ER) }
func BenchmarkE15Overlap(b *testing.B)     { benchExperiment(b, experiments.E15Overlap) }
func BenchmarkE16Debias(b *testing.B)      { benchExperiment(b, experiments.E16Debias) }
func BenchmarkE17FairPrep(b *testing.B)    { benchExperiment(b, experiments.E17FairPrep) }
func BenchmarkE18JoinCoverage(b *testing.B) {
	benchExperiment(b, experiments.E18JoinCoverage)
}

// --- substrate micro-benchmarks ---

// BenchmarkDTDraw measures tailoring throughput: draws per second under the
// RatioColl strategy on a 8-source instance.
func BenchmarkDTDraw(b *testing.B) {
	r := rng.New(1)
	var probs [][]float64
	var costs []float64
	var sources []dt.Source
	for i := 0; i < 8; i++ {
		f := 0.05 + 0.1*r.Float64()
		probs = append(probs, []float64{1 - f, f})
		costs = append(costs, 1)
		sources = append(sources, dt.NewDistSource(probs[i], 1))
	}
	e := &dt.Engine{Sources: sources}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(dt.NewRatioColl(probs, costs), []int{10, 10}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMUPs measures pattern-breaker MUP enumeration on a 5-attribute
// dataset.
func BenchmarkMUPs(b *testing.B) {
	cfg := synth.DefaultPopulation(5000)
	p := synth.Generate(cfg, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpace(p.Data, []string{"race", "sex", "label"}, 25)
		if mups := s.MUPs(); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

// BenchmarkExactJoinSample measures uniform join-result samples per second.
func BenchmarkExactJoinSample(b *testing.B) {
	r := rng.New(1)
	var rt, st []joinsample.Tuple
	for k := 0; k < 1000; k++ {
		rt = append(rt, joinsample.Tuple{Right: int64(k), Value: 1})
	}
	cat := rng.NewCategorical(rng.ZipfWeights(1000, 1.2))
	for i := 0; i < 100000; i++ {
		st = append(st, joinsample.Tuple{Left: int64(cat.Draw(r)), Value: 1})
	}
	chain, err := joinsample.NewChain(joinsample.NewRelation("R", rt), joinsample.NewRelation("S", st))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := chain.ExactSample(r); !ok {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkWanderSample measures wander-join walks per second on the same
// skewed join.
func BenchmarkWanderSample(b *testing.B) {
	r := rng.New(2)
	var rt, st []joinsample.Tuple
	for k := 0; k < 1000; k++ {
		rt = append(rt, joinsample.Tuple{Right: int64(k), Value: 1})
	}
	cat := rng.NewCategorical(rng.ZipfWeights(1000, 1.2))
	for i := 0; i < 100000; i++ {
		st = append(st, joinsample.Tuple{Left: int64(cat.Draw(r)), Value: 1})
	}
	chain, err := joinsample.NewChain(joinsample.NewRelation("R", rt), joinsample.NewRelation("S", st))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.WanderSample(r)
	}
}

// BenchmarkInvertedTopK and BenchmarkLinearScanJoinable compare the two
// exact joinability search paths against the same corpus as the LSH bench.
func BenchmarkInvertedTopK(b *testing.B) {
	repo, query := discoveryCorpus(b)
	ix := discovery.NewInvertedIndex(repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopKJoinable(query, 10)
	}
}

func BenchmarkLinearScanJoinable(b *testing.B) {
	repo, query := discoveryCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.JoinableColumns(query, 0.5)
	}
}

func discoveryCorpus(b *testing.B) (*discovery.Repository, map[string]bool) {
	b.Helper()
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 200, RowsPerTable: 200, KeyUniverse: 50000, QueryKeys: 200,
	}, rng.New(3))
	repo := discovery.NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			b.Fatal(err)
		}
	}
	return repo, discovery.DomainOf(c.Query, "key")
}

// BenchmarkLSHQuery measures containment queries per second against a
// 200-column index.
func BenchmarkLSHQuery(b *testing.B) {
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 200, RowsPerTable: 200, KeyUniverse: 50000, QueryKeys: 200,
	}, rng.New(3))
	repo := discovery.NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			b.Fatal(err)
		}
	}
	var refs []discovery.ColumnRef
	var domains []map[string]bool
	for _, ref := range repo.Columns() {
		if ref.Column == "key" {
			refs = append(refs, ref)
			domains = append(domains, repo.Domain(ref))
		}
	}
	ens, err := discovery.NewLSHEnsemble(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	ens.Index(refs, domains)
	query := discovery.DomainOf(c.Query, "key")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens.Query(query, 0.5)
	}
}
