// Package redi's root benchmark harness: one testing.B benchmark per
// experiment table (E1–E18, see DESIGN.md and EXPERIMENTS.md) plus
// throughput micro-benchmarks for the performance-critical substrates.
// Regenerate every table with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks report the wall time of regenerating the full
// table; the table contents themselves are printed by cmd/experiments.
package redi

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"redi/internal/cleaning"
	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/dt"
	"redi/internal/experiments"
	"redi/internal/joinsample"
	"redi/internal/obs"
	"redi/internal/parallel"
	"redi/internal/rng"
	"redi/internal/synth"
)

func benchExperiment(b *testing.B, run func(seed uint64) *experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := run(uint64(i) + 1)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1DTKnown(b *testing.B)      { benchExperiment(b, experiments.E1DTKnown) }
func BenchmarkE2DTUnknown(b *testing.B)    { benchExperiment(b, experiments.E2DTUnknown) }
func BenchmarkE3Coverage(b *testing.B)     { benchExperiment(b, experiments.E3Coverage) }
func BenchmarkE4JoinSampling(b *testing.B) { benchExperiment(b, experiments.E4JoinSampling) }
func BenchmarkE5OnlineAgg(b *testing.B)    { benchExperiment(b, experiments.E5OnlineAgg) }
func BenchmarkE6Discovery(b *testing.B)    { benchExperiment(b, experiments.E6Discovery) }
func BenchmarkE7Imputation(b *testing.B)   { benchExperiment(b, experiments.E7Imputation) }
func BenchmarkE8FairRange(b *testing.B)    { benchExperiment(b, experiments.E8FairRange) }
func BenchmarkE9SliceTuner(b *testing.B)   { benchExperiment(b, experiments.E9SliceTuner) }
func BenchmarkE10Crowd(b *testing.B)       { benchExperiment(b, experiments.E10Crowd) }
func BenchmarkE11Market(b *testing.B)      { benchExperiment(b, experiments.E11Market) }
func BenchmarkE12EndToEnd(b *testing.B)    { benchExperiment(b, experiments.E12EndToEnd) }
func BenchmarkE13Remedy(b *testing.B)      { benchExperiment(b, experiments.E13Remedy) }
func BenchmarkE14ER(b *testing.B)          { benchExperiment(b, experiments.E14ER) }
func BenchmarkE15Overlap(b *testing.B)     { benchExperiment(b, experiments.E15Overlap) }
func BenchmarkE16Debias(b *testing.B)      { benchExperiment(b, experiments.E16Debias) }
func BenchmarkE17FairPrep(b *testing.B)    { benchExperiment(b, experiments.E17FairPrep) }
func BenchmarkE18JoinCoverage(b *testing.B) {
	benchExperiment(b, experiments.E18JoinCoverage)
}

// --- parallel variants ---
//
// Each *Parallel benchmark runs the identical workload as its serial
// sibling with the worker count set to parallel.Auto (one worker per CPU);
// the outputs are asserted bit-identical by the determinism tests, so the
// pair isolates the scheduling cost/benefit. Compare with benchstat; see
// BENCH_PR1.json for the recorded baseline.

// BenchmarkE6DiscoveryParallel regenerates the E6 table with the LSH
// ensemble's index build and query fan-out sharded across all CPUs.
func BenchmarkE6DiscoveryParallel(b *testing.B) {
	benchExperiment(b, func(seed uint64) *experiments.Table {
		return experiments.E6DiscoveryWorkers(seed, parallel.Auto)
	})
}

// BenchmarkE14ERParallel regenerates the E14 table with candidate-pair
// comparison sharded across all CPUs.
func BenchmarkE14ERParallel(b *testing.B) {
	benchExperiment(b, func(seed uint64) *experiments.Table {
		return experiments.E14ERWorkers(seed, parallel.Auto)
	})
}

// BenchmarkMUPsParallel is BenchmarkMUPs with the pattern-breaker search
// sharded by the root's children.
func BenchmarkMUPsParallel(b *testing.B) {
	cfg := synth.DefaultPopulation(5000)
	p := synth.Generate(cfg, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpace(p.Data, []string{"race", "sex", "label"}, 25)
		if mups := s.MUPsParallel(parallel.Auto); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

// erBenchCorpus builds a blocking-friendly duplicated-record corpus large
// enough that pair comparison dominates.
func erBenchCorpus(b *testing.B) *dataset.Dataset {
	b.Helper()
	r := rng.New(7)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "entity", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "name", Kind: dataset.Categorical, Role: dataset.Feature},
	))
	for e := 0; e < 400; e++ {
		base := make([]byte, 10)
		for i := range base {
			base[i] = byte('a' + r.Intn(26))
		}
		for c := 0; c < 5; c++ {
			n := append([]byte(nil), base...)
			if c > 0 {
				n[1+r.Intn(len(n)-1)] = byte('a' + r.Intn(26))
			}
			d.MustAppendRow(dataset.Cat(fmt.Sprintf("e%03d", e)), dataset.Cat(string(n)))
		}
	}
	return d
}

func benchERResolve(b *testing.B, workers int) {
	d := erBenchCorpus(b)
	cfg := cleaning.ERConfig{NameAttr: "name", BlockPrefix: 1, Threshold: 0.88, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cleaning.ResolveEntities(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.PairsCompared == 0 {
			b.Fatal("no pairs compared")
		}
	}
}

// BenchmarkERResolve / BenchmarkERResolveParallel measure blocking +
// Jaro–Winkler pair comparison + union-find, serial vs all-CPU.
func BenchmarkERResolve(b *testing.B)         { benchERResolve(b, 0) }
func BenchmarkERResolveParallel(b *testing.B) { benchERResolve(b, parallel.Auto) }

// --- substrate micro-benchmarks ---

// BenchmarkDTDraw measures tailoring throughput: draws per second under the
// RatioColl strategy on a 8-source instance.
func BenchmarkDTDraw(b *testing.B) {
	r := rng.New(1)
	var probs [][]float64
	var costs []float64
	var sources []dt.Source
	for i := 0; i < 8; i++ {
		f := 0.05 + 0.1*r.Float64()
		probs = append(probs, []float64{1 - f, f})
		costs = append(costs, 1)
		sources = append(sources, dt.NewDistSource(probs[i], 1))
	}
	e := &dt.Engine{Sources: sources}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(dt.NewRatioColl(probs, costs), []int{10, 10}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMUPs measures pattern-breaker MUP enumeration on a 5-attribute
// dataset.
func BenchmarkMUPs(b *testing.B) {
	cfg := synth.DefaultPopulation(5000)
	p := synth.Generate(cfg, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpace(p.Data, []string{"race", "sex", "label"}, 25)
		if mups := s.MUPs(); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

// BenchmarkExactJoinSample measures uniform join-result samples per second.
func BenchmarkExactJoinSample(b *testing.B) {
	r := rng.New(1)
	var rt, st []joinsample.Tuple
	for k := 0; k < 1000; k++ {
		rt = append(rt, joinsample.Tuple{Right: int64(k), Value: 1})
	}
	cat := rng.NewCategorical(rng.ZipfWeights(1000, 1.2))
	for i := 0; i < 100000; i++ {
		st = append(st, joinsample.Tuple{Left: int64(cat.Draw(r)), Value: 1})
	}
	chain, err := joinsample.NewChain(joinsample.NewRelation("R", rt), joinsample.NewRelation("S", st))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := chain.ExactSample(r); !ok {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkWanderSample measures wander-join walks per second on the same
// skewed join.
func BenchmarkWanderSample(b *testing.B) {
	r := rng.New(2)
	var rt, st []joinsample.Tuple
	for k := 0; k < 1000; k++ {
		rt = append(rt, joinsample.Tuple{Right: int64(k), Value: 1})
	}
	cat := rng.NewCategorical(rng.ZipfWeights(1000, 1.2))
	for i := 0; i < 100000; i++ {
		st = append(st, joinsample.Tuple{Left: int64(cat.Draw(r)), Value: 1})
	}
	chain, err := joinsample.NewChain(joinsample.NewRelation("R", rt), joinsample.NewRelation("S", st))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.WanderSample(r)
	}
}

// BenchmarkInvertedTopK and BenchmarkLinearScanJoinable compare the two
// exact joinability search paths against the same corpus as the LSH bench.
func BenchmarkInvertedTopK(b *testing.B) {
	repo, query := discoveryCorpus(b)
	ix := discovery.NewInvertedIndex(repo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopKJoinable(query, 10)
	}
}

func BenchmarkLinearScanJoinable(b *testing.B) {
	repo, query := discoveryCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.JoinableColumns(query, 0.5)
	}
}

func discoveryCorpus(b *testing.B) (*discovery.Repository, map[string]bool) {
	b.Helper()
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 200, RowsPerTable: 200, KeyUniverse: 50000, QueryKeys: 200,
	}, rng.New(3))
	repo := discovery.NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			b.Fatal(err)
		}
	}
	return repo, discovery.DomainOf(c.Query, "key")
}

// lshBenchSetup builds the 200-column corpus shared by the LSH index and
// query benchmarks.
func lshBenchSetup(b *testing.B) (refs []discovery.ColumnRef, domains []map[string]bool, query map[string]bool) {
	b.Helper()
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 200, RowsPerTable: 200, KeyUniverse: 50000, QueryKeys: 200,
	}, rng.New(3))
	repo := discovery.NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			b.Fatal(err)
		}
	}
	for _, ref := range repo.Columns() {
		if ref.Column == "key" {
			refs = append(refs, ref)
			domains = append(domains, repo.Domain(ref))
		}
	}
	return refs, domains, discovery.DomainOf(c.Query, "key")
}

func benchLSHIndex(b *testing.B, workers int) {
	refs, domains, _ := lshBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens, err := discovery.NewLSHEnsemble(128, 8)
		if err != nil {
			b.Fatal(err)
		}
		ens.Workers = workers
		ens.Index(refs, domains)
	}
}

// BenchmarkLSHIndex / BenchmarkLSHIndexParallel measure MinHash signature
// construction plus bucket builds for a 200-column index, serial vs
// all-CPU.
func BenchmarkLSHIndex(b *testing.B)         { benchLSHIndex(b, 0) }
func BenchmarkLSHIndexParallel(b *testing.B) { benchLSHIndex(b, parallel.Auto) }

func benchLSHQuery(b *testing.B, workers int) {
	refs, domains, query := lshBenchSetup(b)
	ens, err := discovery.NewLSHEnsemble(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	ens.Workers = workers
	ens.Index(refs, domains)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens.Query(query, 0.5)
	}
}

// BenchmarkLSHQuery measures containment queries per second against a
// 200-column index; the Parallel variant fans out partition probes and
// candidate scoring.
func BenchmarkLSHQuery(b *testing.B)         { benchLSHQuery(b, 0) }
func BenchmarkLSHQueryParallel(b *testing.B) { benchLSHQuery(b, parallel.Auto) }

// --- observability benchmarks (PR 5) ---

// BenchmarkObsCounterHot measures the per-increment cost of the obs
// counter in its three states: a live atomic counter, the nil (disabled)
// no-op path, and an unsynchronized per-worker shard.
func BenchmarkObsCounterHot(b *testing.B) {
	b.Run("atomic", func(b *testing.B) {
		c := obs.NewRegistry().Counter("bench.hot")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
		if c.Value() != int64(b.N) {
			b.Fatal("lost increments")
		}
	})
	b.Run("nil", func(b *testing.B) {
		var c *obs.Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("sharded", func(b *testing.B) {
		c := obs.NewRegistry().Counter("bench.hot")
		sh := c.Sharded(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh.Add(0, 1)
		}
		sh.Merge()
		if c.Value() != int64(b.N) {
			b.Fatal("lost increments")
		}
	})
}

// BenchmarkMUPsObs is BenchmarkMUPs with a live site registry attached to
// the space; the delta against BenchmarkMUPs is the full instrumentation
// cost of the coverage walk (the disabled cost is already inside
// BenchmarkMUPs, which runs with Obs nil).
func BenchmarkMUPsObs(b *testing.B) {
	cfg := synth.DefaultPopulation(5000)
	p := synth.Generate(cfg, rng.New(1))
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpace(p.Data, []string{"race", "sex", "label"}, 25)
		s.Obs = reg
		if mups := s.MUPs(); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

// BenchmarkLSHQueryObs is BenchmarkLSHQuery with a live site registry on
// the ensemble, isolating the probe/candidate tally cost per query.
func BenchmarkLSHQueryObs(b *testing.B) {
	refs, domains, query := lshBenchSetup(b)
	ens, err := discovery.NewLSHEnsemble(128, 8)
	if err != nil {
		b.Fatal(err)
	}
	ens.Obs = obs.NewRegistry()
	ens.Index(refs, domains)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens.Query(query, 0.5)
	}
}

// --- predicate VM benchmarks (PR 6) ---

// predBenchData is the 100k-row mixed corpus for the predicate benchmarks:
// categorical sensitive attributes plus numeric features, with the default
// population's null rates.
func predBenchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(100000), rng.New(13)).Data
}

// predBenchClosure is the seed idiom: boxed-Value row closures composed with
// closure combinators. PredicateFunc keeps it opaque, so Count/Select take
// the interpreted per-row path.
func predBenchClosure() dataset.Predicate {
	race := dataset.PredicateFunc(func(d *dataset.Dataset, row int) bool {
		v := d.Value(row, "race")
		return !v.Null && (v.Cat == "black" || v.Cat == "hispanic")
	})
	f0 := dataset.PredicateFunc(func(d *dataset.Dataset, row int) bool {
		v := d.Value(row, "f0")
		return !v.Null && v.Num >= -0.5 && v.Num <= 1.5
	})
	sex := dataset.PredicateFunc(func(d *dataset.Dataset, row int) bool {
		v := d.Value(row, "sex")
		return !v.Null && v.Cat == "F"
	})
	f1 := dataset.PredicateFunc(func(d *dataset.Dataset, row int) bool {
		v := d.Value(row, "f1")
		return !v.Null && v.Num > 0
	})
	return dataset.Or(dataset.And(race, f0), dataset.And(sex, f1))
}

// predBenchTree is the same predicate as a compilable combinator tree; the
// selection entry points recognize it and run the bytecode VM's vectorized
// bitmap driver.
func predBenchTree() dataset.Predicate {
	return dataset.Or(
		dataset.And(dataset.In("race", "black", "hispanic"), dataset.Range("f0", -0.5, 1.5)),
		dataset.And(dataset.Eq("sex", "F"), dataset.Compare("f1", dataset.CmpGT, 0)),
	)
}

// BenchmarkPredicateClosure / BenchmarkPredicateCompiled measure Count on
// the 100k-row corpus: interpreted boxed-Value closures vs the compiled
// bitmap driver (the compiled timing includes compilation, which binds
// literals to dictionary codes per call).
func BenchmarkPredicateClosure(b *testing.B) {
	d := predBenchData(b)
	p := predBenchClosure()
	want := d.Count(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Count(p) != want {
			b.Fatal("count drifted")
		}
	}
}

func BenchmarkPredicateCompiled(b *testing.B) {
	d := predBenchData(b)
	p := predBenchTree()
	want := d.Count(predBenchClosure())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Count(p) != want {
			b.Fatal("compiled count disagrees with closure count")
		}
	}
}

// BenchmarkPredicateSelectClosure / BenchmarkPredicateSelectCompiled measure
// the full Select (index selection + column gather) under both paths.
func BenchmarkPredicateSelectClosure(b *testing.B) {
	d := predBenchData(b)
	p := predBenchClosure()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Select(p).NumRows() == 0 {
			b.Fatal("empty selection")
		}
	}
}

func BenchmarkPredicateSelectCompiled(b *testing.B) {
	d := predBenchData(b)
	p := predBenchTree()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Select(p).NumRows() == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkPredicateEvalOnly isolates the steady-state vectorized evaluation
// (no compile, no gather): one program evaluated repeatedly against its
// preallocated scratch — the allocation-free hot path.
func BenchmarkPredicateEvalOnly(b *testing.B) {
	d := predBenchData(b)
	cp, ok := dataset.CompilePredicate(d, predBenchTree())
	if !ok {
		b.Fatal("predicate did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cp.CountFast() == 0 {
			b.Fatal("empty count")
		}
	}
}

// --- group-ID substrate benchmarks (PR 4) ---

// groupBenchData builds a population large enough that per-row grouping
// work dominates; race x sex x label gives a realistic intersectional
// group count.
func groupBenchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(20000), rng.New(11)).Data
}

// BenchmarkGroupByStringKey is the seed implementation of GroupBy kept as
// the benchmark baseline: render an "attr=val;attr=val" string per row,
// index a map with it, then sort the keys. Codes and dictionaries are
// hoisted out of the timer exactly as the old implementation read them.
func BenchmarkGroupByStringKey(b *testing.B) {
	d := groupBenchData(b)
	attrs := []string{"race", "sex", "label"}
	codes := make([][]int32, len(attrs))
	dicts := make([][]string, len(attrs))
	for i, a := range attrs {
		codes[i], dicts[i] = d.Codes(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := map[dataset.GroupKey][]int{}
		var keys []dataset.GroupKey
		byRow := make([]int, d.NumRows())
		var sb strings.Builder
		for r := 0; r < d.NumRows(); r++ {
			sb.Reset()
			null := false
			for a := range attrs {
				c := codes[a][r]
				if c < 0 {
					null = true
					break
				}
				if a > 0 {
					sb.WriteByte(';')
				}
				sb.WriteString(attrs[a])
				sb.WriteByte('=')
				sb.WriteString(dicts[a][c])
			}
			if null {
				byRow[r] = -1
				continue
			}
			k := dataset.GroupKey(sb.String())
			if _, seen := rows[k]; !seen {
				keys = append(keys, k)
			}
			rows[k] = append(rows[k], r)
		}
		sort.Slice(keys, func(x, y int) bool { return keys[x] < keys[y] })
		for gi, k := range keys {
			for _, r := range rows[k] {
				byRow[r] = gi
			}
		}
		if len(keys) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkGroupBy measures the dense-gid GroupBy on the same corpus and
// attributes: dictionary-code composition into gids, no per-row strings.
func BenchmarkGroupBy(b *testing.B) {
	d := groupBenchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := d.GroupBy("race", "sex", "label"); g.NumGroups() == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkParityAuditStringKey is the selection-rate parity audit in the
// seed idiom: per-row key rendering into a map of group tallies.
func BenchmarkParityAuditStringKey(b *testing.B) {
	d := groupBenchData(b)
	attrs := []string{"race", "sex"}
	codes := make([][]int32, len(attrs))
	dicts := make([][]string, len(attrs))
	for i, a := range attrs {
		codes[i], dicts[i] = d.Codes(a)
	}
	labels, labelDict := d.Codes("label")
	pos := int32(-1)
	for c, v := range labelDict {
		if v == "pos" {
			pos = int32(c)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		type tally struct{ n, pos int }
		byKey := map[dataset.GroupKey]*tally{}
		var sb strings.Builder
		for r := 0; r < d.NumRows(); r++ {
			sb.Reset()
			null := false
			for a := range attrs {
				c := codes[a][r]
				if c < 0 {
					null = true
					break
				}
				if a > 0 {
					sb.WriteByte(';')
				}
				sb.WriteString(attrs[a])
				sb.WriteByte('=')
				sb.WriteString(dicts[a][c])
			}
			if null {
				continue
			}
			k := dataset.GroupKey(sb.String())
			t := byKey[k]
			if t == nil {
				t = &tally{}
				byKey[k] = t
			}
			t.n++
			if labels[r] == pos {
				t.pos++
			}
		}
		minR, maxR := 1.0, 0.0
		for _, t := range byKey {
			rate := float64(t.pos) / float64(t.n)
			if rate < minR {
				minR = rate
			}
			if rate > maxR {
				maxR = rate
			}
		}
		if maxR < minR {
			b.Fatal("no groups tallied")
		}
	}
}

// BenchmarkParityAudit is the same audit on the gid substrate: one GroupBy
// plus gid-indexed slice tallies, no strings anywhere.
func BenchmarkParityAudit(b *testing.B) {
	d := groupBenchData(b)
	labels, labelDict := d.Codes("label")
	pos := int32(-1)
	for c, v := range labelDict {
		if v == "pos" {
			pos = int32(c)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := d.GroupBy("race", "sex")
		posN := make([]int, g.NumGroups())
		for r, gi := range g.ByRow {
			if gi >= 0 && labels[r] == pos {
				posN[gi]++
			}
		}
		minR, maxR := 1.0, 0.0
		for gi, n := range g.Counts {
			rate := float64(posN[gi]) / float64(n)
			if rate < minR {
				minR = rate
			}
			if rate > maxR {
				maxR = rate
			}
		}
		if maxR < minR {
			b.Fatal("no groups tallied")
		}
	}
}
