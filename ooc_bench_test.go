package redi

import (
	"path/filepath"
	"testing"

	"redi/internal/colfile"
	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/expr"
	"redi/internal/rng"
	"redi/internal/synth"
)

// The BenchmarkOOC* pairs measure the out-of-core substrate against the
// in-memory baseline on identical rows: InMemory runs the Dataset hot path,
// Mapped runs the partition-at-a-time path over a freshly written column
// file's mapped pages (warm cache — the file was just written). Both sides
// run serial so the pairs isolate substrate overhead, not parallel speedup.

// oocFile writes rows to a column file and returns the partitioned view.
func oocFile(b *testing.B, d *dataset.Dataset) *dataset.Partitioned {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.col")
	if err := colfile.WriteDataset(d, path, colfile.WriterOptions{}); err != nil {
		b.Fatal(err)
	}
	f, err := colfile.Open(path, colfile.OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return dataset.NewPartitioned(f)
}

func oocMUPsData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(50_000), rng.New(21)).Data
}

func BenchmarkOOCMUPsInMemory(b *testing.B) {
	d := oocMUPsData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpace(d, []string{"race", "sex", "label"}, 25)
		if mups := s.MUPs(); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

func BenchmarkOOCMUPsMapped(b *testing.B) {
	pd := oocFile(b, oocMUPsData(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coverage.NewSpacePartitioned(pd, []string{"race", "sex", "label"}, 25, 0)
		if mups := s.MUPs(); len(mups) > 1000 {
			b.Fatal("unexpected MUP explosion")
		}
	}
}

func oocGroupByData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(200_000), rng.New(22)).Data
}

func BenchmarkOOCGroupByInMemory(b *testing.B) {
	d := oocGroupByData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := d.GroupBy("race", "sex", "label"); g.NumGroups() == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkOOCGroupByMapped(b *testing.B) {
	pd := oocFile(b, oocGroupByData(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := pd.GroupBy(0, "race", "sex", "label"); g.NumGroups() == 0 {
			b.Fatal("no groups")
		}
	}
}

const oocSelectExpr = "race in ('black','hispanic') and f0 between -0.5 and 1.5 or sex = 'F' and f1 > 0"

func oocSelectData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(1_000_000), rng.New(23)).Data
}

func BenchmarkOOCSelectInMemory(b *testing.B) {
	d := oocSelectData(b)
	cp, err := expr.Compile(oocSelectExpr, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm := cp.SelectBitmap(); bm.Count() == 0 {
			b.Fatal("empty selection")
		}
	}
}

func BenchmarkOOCSelectMapped(b *testing.B) {
	pd := oocFile(b, oocSelectData(b))
	pp, err := expr.CompilePartitioned(oocSelectExpr, pd)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm := pp.SelectBitmap(0); bm.Count() == 0 {
			b.Fatal("empty selection")
		}
	}
}
