package redi

import (
	"net/http"
	"strings"
	"testing"

	"redi/internal/coverage"
	"redi/internal/serve"
	"redi/internal/trace"
)

// benchServeAuditTrace drives /audit through the full service stack at the
// given flight-recorder capacity; -1 disables tracing entirely, so nil
// spans flow through every layer. The Disabled/Enabled pair bounds the
// cost of recording a request trace, and Disabled vs the pre-tracing
// BenchmarkServeAuditP99 bounds the nil fast-path overhead (<2% is the
// acceptance bar).
func benchServeAuditTrace(b *testing.B, traceBuffer int) {
	svc, err := serve.NewService(serveBenchSeed(b), serve.Config{
		StoreConfig: serve.StoreConfig{Threshold: 25},
		TraceBuffer: traceBuffer,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	req, err := http.NewRequest("GET", "http://bench/audit?threshold=25&maxnull=0.2", strings.NewReader(""))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := &discardWriter{code: http.StatusOK, hdr: http.Header{}}
		svc.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("audit status %d: %s", w.code, w.buf.String())
		}
	}
}

func BenchmarkTraceServeAuditDisabled(b *testing.B) { benchServeAuditTrace(b, -1) }
func BenchmarkTraceServeAuditEnabled(b *testing.B)  { benchServeAuditTrace(b, 64) }

// benchTraceMUPs pins the per-walk tracing cost at the kernel level: the
// traced coverage walk with a nil span must be indistinguishable from
// the untraced walk (the nil checks are predictable pointer branches at
// walk granularity, not per DFS node), while a live span adds one child
// span allocation and a handful of attribute writes per walk.
func benchTraceMUPs(b *testing.B, live bool) {
	sp := coverage.NewSpace(serveBenchSeed(b), []string{"race", "sex"}, 25)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var root *trace.Span
		if live {
			root = trace.New("bench")
		}
		sink += len(sp.MUPsTraced(0, root))
		root.End()
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkTraceMUPsNilSpan(b *testing.B)  { benchTraceMUPs(b, false) }
func BenchmarkTraceMUPsLiveSpan(b *testing.B) { benchTraceMUPs(b, true) }
