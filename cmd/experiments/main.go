// Command experiments regenerates the evaluation tables of DESIGN.md
// (E1–E18). With no arguments it runs everything; pass experiment ids to
// run a subset.
//
//	go run ./cmd/experiments                  # all tables, serially
//	go run ./cmd/experiments E1 E12           # selected tables
//	go run ./cmd/experiments -seed 7 E4       # alternate seed
//	go run ./cmd/experiments -parallel -1     # run experiments on all CPUs
//	go run ./cmd/experiments -obs E3 E6       # print the observability report
//	go run ./cmd/experiments -obs-json o.json # persist the report as JSON
//	go run ./cmd/experiments -debug-addr localhost:6060  # pprof/expvar/metrics
//
// Experiments are pure functions of the seed, so -parallel changes only
// wall time, never table contents (the measured-ms cells of E3/E18 vary
// with machine load either way). The same holds for the deterministic
// counter section of the -obs report: it is bit-identical at any worker
// count; only the runtime section (chunk geometry, spans) varies.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"redi/internal/experiments"
	"redi/internal/obs"
	"redi/internal/parallel"
)

func main() {
	seed := flag.Uint64("seed", 1, "base seed for all experiments")
	workers := flag.Int("parallel", 0, "experiments to run concurrently (0 = serial, -1 = all CPUs)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsFlag := flag.Bool("obs", false, "print the observability report after the run")
	obsJSON := flag.String("obs-json", "", "write the observability report as JSON to this path")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics (Prometheus text) on this address, e.g. localhost:6060")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	var reg *obs.Registry
	if *obsFlag || *obsJSON != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.Enable(reg)
		parallel.SetObserver(reg)
	}
	if *debugAddr != "" {
		// pprof registers its handlers on http.DefaultServeMux at import;
		// expvar exposes /debug/vars. The obs report joins both.
		expvar.Publish("redi.obs", expvar.Func(reg.ExpvarFunc()))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof: /debug/pprof, expvar: /debug/vars, prometheus: /metrics)\n", *debugAddr)
	}

	want := map[string]bool{}
	for _, id := range flag.Args() {
		want[id] = true
	}
	all := experiments.All()
	known := map[string]bool{}
	for _, e := range all {
		known[e.ID] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: E1..E18\n", id)
			os.Exit(2)
		}
	}
	var selected []experiments.Experiment
	for _, e := range all {
		if len(want) == 0 || want[e.ID] {
			selected = append(selected, e)
		}
	}
	start := time.Now()
	results := experiments.RunAll(selected, *seed, *workers)
	total := time.Since(start)
	for _, res := range results {
		fmt.Println(res.Table.String())
		fmt.Printf("(%s completed in %v)\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("ran %d experiments in %v (workers=%d)\n",
		len(results), total.Round(time.Millisecond), parallel.Workers(*workers))

	if reg != nil {
		reg.RecordSpan("experiments.run_all", total)
		if *obsFlag {
			fmt.Println()
			if err := reg.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "obs report: %v\n", err)
				os.Exit(1)
			}
		}
		if *obsJSON != "" {
			f, err := os.Create(*obsJSON)
			if err == nil {
				err = reg.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "obs json: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
