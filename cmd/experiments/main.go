// Command experiments regenerates the evaluation tables of DESIGN.md
// (E1–E18). With no arguments it runs everything; pass experiment ids to
// run a subset.
//
//	go run ./cmd/experiments                # all tables, serially
//	go run ./cmd/experiments E1 E12         # selected tables
//	go run ./cmd/experiments -seed 7 E4     # alternate seed
//	go run ./cmd/experiments -parallel -1   # run experiments on all CPUs
//
// Experiments are pure functions of the seed, so -parallel changes only
// wall time, never table contents (the measured-ms cells of E3/E18 vary
// with machine load either way).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redi/internal/experiments"
	"redi/internal/parallel"
)

func main() {
	seed := flag.Uint64("seed", 1, "base seed for all experiments")
	workers := flag.Int("parallel", 0, "experiments to run concurrently (0 = serial, -1 = all CPUs)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range flag.Args() {
		want[id] = true
	}
	all := experiments.All()
	known := map[string]bool{}
	for _, e := range all {
		known[e.ID] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: E1..E18\n", id)
			os.Exit(2)
		}
	}
	var selected []experiments.Experiment
	for _, e := range all {
		if len(want) == 0 || want[e.ID] {
			selected = append(selected, e)
		}
	}
	start := time.Now()
	results := experiments.RunAll(selected, *seed, *workers)
	total := time.Since(start)
	for _, res := range results {
		fmt.Println(res.Table.String())
		fmt.Printf("(%s completed in %v)\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("ran %d experiments in %v (workers=%d)\n",
		len(results), total.Round(time.Millisecond), parallel.Workers(*workers))
}
