// Command experiments regenerates the evaluation tables of DESIGN.md
// (E1–E18). With no arguments it runs everything; pass experiment ids to
// run a subset.
//
//	go run ./cmd/experiments            # all tables
//	go run ./cmd/experiments E1 E12     # selected tables
//	go run ./cmd/experiments -seed 7 E4 # alternate seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redi/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "base seed for all experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range flag.Args() {
		want[id] = true
	}
	all := experiments.All()
	known := map[string]bool{}
	for _, e := range all {
		known[e.ID] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: E1..E18\n", id)
			os.Exit(2)
		}
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(*seed)
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
