// Command redilint runs REDI's determinism-contract analyzers (see
// internal/lint) over the module and exits non-zero on any finding, so CI
// can gate merges on the contract:
//
//	go run ./cmd/redilint ./...
//
// Findings print as file:line:col: [rule] message. A finding is suppressed
// by an explicit, justified annotation on or directly above the offending
// line:
//
//	//redi:allow <rule> <reason>
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"redi/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	debug := flag.Bool("debug", false, "also print type-check errors encountered while loading (diagnostic aid; never affects the exit code)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: redilint [-list] [-debug] [packages]\n\npackages are Go-tool style patterns relative to the module (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	// Patterns are resolved against the module root; when invoked from a
	// subdirectory, rebase relative patterns onto it.
	if cwd != root {
		rel, err := filepath.Rel(root, cwd)
		if err != nil {
			fatal(err)
		}
		for i, p := range patterns {
			if p != "./..." && p != "..." {
				patterns[i] = "./" + filepath.ToSlash(filepath.Join(rel, p))
			}
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("redilint: no packages matched %v", patterns))
	}

	findings := 0
	for _, pkg := range pkgs {
		if *debug {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "redilint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
		for _, d := range lint.Run(pkg, lint.All()...) {
			rel, err := filepath.Rel(cwd, d.Pos.Filename)
			if err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "redilint: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "redilint: ok (%d packages)\n", len(pkgs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
