// Command redilint runs REDI's determinism-contract analyzers (see
// internal/lint) over the module and exits non-zero on any finding, so CI
// can gate merges on the contract:
//
//	go run ./cmd/redilint ./...
//
// Findings print as file:line:col: [rule] message, or with -json as a
// machine-readable array of {file,line,col,rule,message} objects on stdout
// (the human summary always goes to stderr, so piping stdout stays clean).
// A finding is suppressed by an explicit, justified annotation on or
// directly above the offending line:
//
//	//redi:allow <rule> <reason>
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"

	"redi/internal/lint"
)

// finding is the -json wire form of one diagnostic. Findings are emitted in
// the run's canonical order (file, line, col, rule), so the artifact is
// byte-stable across identical trees.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	// Batch process: the whole run allocates a few hundred MB of ASTs and
	// type info and then exits, so trading peak memory for fewer GC cycles
	// is free wall-clock (the full-repo run is CI's critical path).
	debug.SetGCPercent(800)
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (summary still goes to stderr)")
	debug := flag.Bool("debug", false, "also print type-check errors encountered while loading (diagnostic aid; never affects the exit code)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: redilint [-list] [-json] [-debug] [packages]\n\npackages are Go-tool style patterns relative to the module (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	// Patterns are resolved against the module root; when invoked from a
	// subdirectory, rebase relative patterns onto it.
	if cwd != root {
		rel, err := filepath.Rel(root, cwd)
		if err != nil {
			fatal(err)
		}
		for i, p := range patterns {
			if p != "./..." && p != "..." {
				patterns[i] = "./" + filepath.ToSlash(filepath.Join(rel, p))
			}
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("redilint: no packages matched %v", patterns))
	}

	// all is non-nil even when empty so -json prints [] rather than null.
	all := []finding{}
	for _, pkg := range pkgs {
		if *debug {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "redilint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
		for _, d := range lint.Run(pkg, lint.All()...) {
			rel, err := filepath.Rel(cwd, d.Pos.Filename)
			if err == nil {
				d.Pos.Filename = rel
			}
			all = append(all, finding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Analyzer,
				Message: d.Message,
			})
			if !*jsonOut {
				fmt.Println(d)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "redilint: %d finding(s) across %d package(s)\n", len(all), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "redilint: ok (%d packages)\n", len(pkgs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
