package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"redi/internal/serve"
)

// cmdServe loads a CSV into a resident store and serves the integration API
// over HTTP. With -replay it instead runs a JSONL request log through the
// handlers sequentially and writes the responses to stdout — no socket, so
// the output is a deterministic function of the seed data and the log.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	addr := fs.String("addr", "localhost:8080", "listen address")
	sensitive := fs.String("sensitive", "", "comma-separated sensitive attributes (default: schema roles)")
	threshold := fs.Int("threshold", 10, "default coverage threshold for /audit")
	maxNull := fs.Float64("maxnull", 0.05, "default maximum tolerated null rate for /audit")
	workers := fs.Int("workers", 0, "per-request worker budget (0 = serial)")
	concurrent := fs.Int("concurrent", 4, "max requests executing at once")
	queue := fs.Int("queue", 64, "admission queue depth before 429")
	name := fs.String("name", "resident", "table name in /discovery results")
	replayPath := fs.String("replay", "", "replay a JSONL request log to stdout instead of listening")
	traceBuf := fs.Int("trace-buffer", 64, "flight-recorder capacity in traces (negative disables /debug/requests)")
	slowMS := fs.Int("trace-slow-ms", 0, "retain traces at least this slow in the slow-request log (0 disables)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("serve needs exactly one CSV file")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	d, err := loadCSV(fs.Arg(0), schema)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		StoreConfig: serve.StoreConfig{
			Name:      *name,
			Threshold: *threshold,
			Workers:   *workers,
		},
		MaxNullRate:        *maxNull,
		MaxConcurrent:      *concurrent,
		QueueDepth:         *queue,
		TraceBuffer:        *traceBuf,
		SlowTraceThreshold: time.Duration(*slowMS) * time.Millisecond,
	}
	if *sensitive != "" {
		cfg.Sensitive = strings.Split(*sensitive, ",")
	}
	svc, err := serve.NewService(d, cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err := serve.ReadLog(f)
		if err != nil {
			return err
		}
		return serve.Replay(svc, recs, os.Stdout)
	}
	st := svc.Store().Stats()
	fmt.Fprintf(os.Stderr, "serving %d rows (%d groups over %s) on http://%s\n",
		st.Rows, st.Groups, strings.Join(st.Sensitive, ","), *addr)
	return http.ListenAndServe(*addr, svc)
}
