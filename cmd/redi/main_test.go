package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("id:cat:id,race:cat:sensitive,age:num,label:cat:target")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if a := s.Attr(0); a.Name != "id" || a.Kind != dataset.Categorical || a.Role != dataset.ID {
		t.Fatalf("attr 0 = %+v", a)
	}
	if a := s.Attr(2); a.Kind != dataset.Numeric || a.Role != dataset.Feature {
		t.Fatalf("attr 2 = %+v", a)
	}
	for _, bad := range []string{"", "a", "a:blob", "a:cat:boss", "a:cat:sensitive:extra"} {
		if _, err := parseSchema(bad); err == nil {
			t.Fatalf("parseSchema(%q) accepted", bad)
		}
	}
}

func TestParseNeed(t *testing.T) {
	need, err := parseNeed("race=black;sex=F:100,race=white;sex=M:50")
	if err != nil {
		t.Fatal(err)
	}
	if need["race=black;sex=F"] != 100 || need["race=white;sex=M"] != 50 {
		t.Fatalf("need = %v", need)
	}
	for _, bad := range []string{"", "nocolon", "k:notanumber"} {
		if _, err := parseNeed(bad); err == nil {
			t.Fatalf("parseNeed(%q) accepted", bad)
		}
	}
}

// writeTempCSV materializes a dataset to a temp file and returns the path.
func writeTempCSV(t *testing.T, d *dataset.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

const popSchema = "id:cat:id,race:cat:sensitive,sex:cat:sensitive,f0:num,f1:num,f2:num,f3:num,label:cat:target"

func TestCmdProfileAndLabel(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(200), rng.New(1)).Data
	path := writeTempCSV(t, d)

	if err := cmdProfile([]string{"-schema", popSchema, path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLabel([]string{"-schema", popSchema, "-threshold", "5", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-schema", popSchema}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdProfile([]string{"-schema", "bad", path}); err == nil {
		t.Fatal("bad schema accepted")
	}
	if err := cmdProfile([]string{"-schema", popSchema, "/nonexistent.csv"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestCmdDrift(t *testing.T) {
	a := synth.Generate(synth.DefaultPopulation(300), rng.New(7)).Data
	b := synth.Generate(synth.DefaultPopulation(300), rng.New(8)).Data
	pa, pb := writeTempCSV(t, a), writeTempCSV(t, b)
	if err := cmdDrift([]string{"-schema", popSchema, pa, pb}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDrift([]string{"-schema", popSchema, pa}); err == nil {
		t.Fatal("single file accepted")
	}
	if err := cmdDrift([]string{"-schema", popSchema, pa, "/nonexistent.csv"}); err == nil {
		t.Fatal("nonexistent candidate accepted")
	}
}

func TestCmdSample(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(100), rng.New(2)).Data
	path := writeTempCSV(t, d)
	if err := cmdSample([]string{"-schema", popSchema, "-n", "5", path}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTailor(t *testing.T) {
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        2,
		RowsPerSource:     400,
		SkewConcentration: 5,
	}, rng.New(3))
	p1 := writeTempCSV(t, set.Sources[0])
	p2 := writeTempCSV(t, set.Sources[1])

	// Ask for a group present in both sources.
	var key string
	for gi, k := range set.Groups {
		if set.GroupDists[0][gi] > 0.05 && set.GroupDists[1][gi] > 0.05 {
			key = string(k)
			break
		}
	}
	if key == "" {
		t.Skip("no shared group in this draw")
	}
	out := filepath.Join(t.TempDir(), "out.csv")
	err := cmdTailor([]string{
		"-schema", popSchema,
		"-need", key + ":10",
		"-out", out,
		p1, p2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	schema, err := parseSchema(popSchema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dataset.ReadCSV(f, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 10 {
		t.Fatalf("tailored rows = %d, want 10", got.NumRows())
	}
	g := got.GroupBy("race", "sex")
	if g.Count(dataset.GroupKey(key)) != 10 {
		t.Fatalf("group %s count = %d", key, g.Count(dataset.GroupKey(key)))
	}
}

func TestCmdTailorErrors(t *testing.T) {
	if err := cmdTailor([]string{"-schema", popSchema, "-need", "x:1"}); err == nil {
		t.Fatal("no sources accepted")
	}
	d := synth.Generate(synth.DefaultPopulation(50), rng.New(4)).Data
	path := writeTempCSV(t, d)
	if err := cmdTailor([]string{"-schema", popSchema, path}); err == nil {
		t.Fatal("missing -need accepted")
	}
}

func TestCmdAuditFailureExitPath(t *testing.T) {
	// cmdAudit calls os.Exit(1) on failed audits, so only the passing
	// path is exercised in-process.
	d := synth.Generate(synth.DefaultPopulation(500), rng.New(5)).Data
	path := writeTempCSV(t, d)
	if err := cmdAudit([]string{"-schema", popSchema, "-threshold", "1", "-maxnull", "0.5", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAudit([]string{"-schema", "x:num", path}); err == nil {
		t.Fatal("no sensitive attrs accepted")
	}
}

func TestCmdQuery(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(300), rng.New(6)).Data
	path := writeTempCSV(t, d)
	obsPath := filepath.Join(t.TempDir(), "obs.json")
	for _, args := range [][]string{
		{"-schema", popSchema, "-e", "race = 'black' and f0 > 0", path},
		{"-schema", popSchema, "-e", "race in ('black','asian') or f1 between -1 and 1", "-count", path},
		{"-schema", popSchema, "-e", "sex != 'F' and label is not null", "-select", path},
		{"-schema", popSchema, "-e", "not (race = 'white' or f2 <= 0)", "-explain", "-obs-json", obsPath, path},
	} {
		if err := cmdQuery(args); err != nil {
			t.Fatalf("cmdQuery(%v): %v", args, err)
		}
	}
	if _, err := os.Stat(obsPath); err != nil {
		t.Fatalf("obs json not written: %v", err)
	}
	for name, args := range map[string][]string{
		"missing -e":      {"-schema", popSchema, path},
		"no file":         {"-schema", popSchema, "-e", "f0 > 0"},
		"count+select":    {"-schema", popSchema, "-e", "f0 > 0", "-count", "-select", path},
		"parse error":     {"-schema", popSchema, "-e", "f0 >", path},
		"unknown attr":    {"-schema", popSchema, "-e", "nope = 'x'", path},
		"kind mismatch":   {"-schema", popSchema, "-e", "f0 = 'x'", path},
		"bad schema spec": {"-schema", "x:blob", "-e", "f0 > 0", path},
	} {
		if err := cmdQuery(args); err == nil {
			t.Fatalf("cmdQuery(%s) accepted", name)
		}
	}
}

func TestUsagePrints(t *testing.T) {
	usage() // must not panic
	if !strings.Contains(popSchema, "sensitive") {
		t.Fatal("schema constant broken")
	}
}
