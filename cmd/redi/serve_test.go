package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redi/internal/rng"
	"redi/internal/synth"
)

// TestCmdServeReplay runs the serve command in replay mode twice over the
// same seed data and request log: the outputs must be byte-identical, and
// every replayed API request must succeed.
func TestCmdServeReplay(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(200), rng.New(5)).Data
	csvPath := writeTempCSV(t, d)
	logPath := filepath.Join(t.TempDir(), "replay.jsonl")
	log := strings.Join([]string{
		`{"method":"GET","path":"/stats"}`,
		`{"method":"GET","path":"/audit?threshold=3&maxnull=0.2"}`,
		`{"method":"GET","path":"/query?e=f0+%3E+0&mode=count"}`,
		`{"method":"POST","path":"/discovery","body":"{\"values\":[\"black\",\"white\"],\"threshold\":0.3}"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(logPath, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func() string {
		return captureStdout(t, func() error {
			return cmdServe([]string{"-schema", popSchema, "-threshold", "3", "-replay", logPath, csvPath})
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay output differs:\n%s\n----\n%s", a, b)
	}
	for _, block := range []string{"## GET /stats\n200\n", "## GET /audit?threshold=3&maxnull=0.2\n200\n"} {
		if !strings.Contains(a, block) {
			t.Fatalf("missing %q in replay output:\n%s", block, a)
		}
	}
	if strings.Contains(a, "\n500\n") {
		t.Fatalf("5xx in replay output:\n%s", a)
	}
}

func TestCmdServeErrors(t *testing.T) {
	if err := cmdServe([]string{"-schema", popSchema}); err == nil {
		t.Fatal("missing input file accepted")
	}
	d := synth.Generate(synth.DefaultPopulation(20), rng.New(5)).Data
	csvPath := writeTempCSV(t, d)
	if err := cmdServe([]string{"-schema", "bad", "-replay", "x", csvPath}); err == nil {
		t.Fatal("bad schema accepted")
	}
	if err := cmdServe([]string{"-schema", popSchema, "-replay", "/nonexistent.jsonl", csvPath}); err == nil {
		t.Fatal("missing replay log accepted")
	}
}
