package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"redi/internal/rng"
	"redi/internal/synth"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote — the CLI prints results with fmt.Print, so equivalence
// tests across execution modes compare this output byte for byte.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return out
}

// convertTemp converts a CSV to a column file in a temp dir.
func convertTemp(t *testing.T, csvPath string, partRows int) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "data.col")
	args := []string{"-schema", popSchema, "-out", out}
	if partRows > 0 {
		args = append(args, "-partrows", "128")
	}
	if err := cmdConvert(append(args, csvPath)); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCmdConvertErrors(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(50), rng.New(11)).Data
	path := writeTempCSV(t, d)
	out := filepath.Join(t.TempDir(), "x.col")
	if err := cmdConvert([]string{"-schema", popSchema, path}); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := cmdConvert([]string{"-schema", popSchema, "-out", out}); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := cmdConvert([]string{"-schema", popSchema, "-out", out, "/nonexistent.csv"}); err == nil {
		t.Fatal("nonexistent input accepted")
	}
	if err := cmdConvert([]string{"-schema", popSchema, "-out", out, "-partrows", "100", path}); err == nil {
		t.Fatal("partrows not a multiple of 64 accepted")
	}
	if err := cmdConvert([]string{"-schema", "bad", "-out", out, path}); err == nil {
		t.Fatal("bad schema accepted")
	}
}

// TestCmdQueryModesAgree: query prints identical output whether the input
// is a CSV, the same CSV forced through -partition, or a converted column
// file (mapped or read-at), at any worker count.
func TestCmdQueryModesAgree(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(500), rng.New(12)).Data
	csvPath := writeTempCSV(t, d)
	colPath := convertTemp(t, csvPath, 128)

	for _, e := range []string{
		"race in ('black','asian') and f0 > 0",
		"sex != 'F' or f1 between -1 and 1",
		"race is null or label = 'pos'",
	} {
		for _, mode := range []string{"-count", "-select"} {
			want := captureStdout(t, func() error {
				return cmdQuery([]string{"-schema", popSchema, "-e", e, mode, csvPath})
			})
			for name, args := range map[string][]string{
				"csv -partition": {"-schema", popSchema, "-e", e, mode, "-partition", "128", "-workers", "4", csvPath},
				"colfile mmap":   {"-e", e, mode, "-workers", "2", colPath},
				"colfile readat": {"-e", e, mode, "-no-mmap", colPath},
			} {
				got := captureStdout(t, func() error { return cmdQuery(args) })
				if got != want {
					t.Fatalf("%s %s (%s): output diverged:\n%s\nwant:\n%s", e, mode, name, got, want)
				}
			}
		}
	}
}

// TestCmdAuditModesAgree: the audit report is identical across backends;
// the column file supplies its own schema, roles included.
func TestCmdAuditModesAgree(t *testing.T) {
	d := synth.Generate(synth.DefaultPopulation(600), rng.New(13)).Data
	csvPath := writeTempCSV(t, d)
	colPath := convertTemp(t, csvPath, 128)

	common := []string{"-threshold", "1", "-maxnull", "0.5"}
	want := captureStdout(t, func() error {
		return cmdAudit(append(append([]string{"-schema", popSchema}, common...), csvPath))
	})
	for name, args := range map[string][]string{
		"csv -partition": append(append([]string{"-schema", popSchema}, common...), "-partition", "256", "-workers", "4", csvPath),
		"colfile":        append(append([]string{}, common...), "-workers", "2", colPath),
	} {
		got := captureStdout(t, func() error { return cmdAudit(args) })
		if got != want {
			t.Fatalf("%s: audit diverged:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

// TestCmdTailorFromColumnFiles: tailoring from converted column files
// produces the identical output CSV as from the original CSV sources under
// the same seed.
func TestCmdTailorFromColumnFiles(t *testing.T) {
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        2,
		RowsPerSource:     400,
		SkewConcentration: 5,
	}, rng.New(14))
	p1 := writeTempCSV(t, set.Sources[0])
	p2 := writeTempCSV(t, set.Sources[1])
	c1 := convertTemp(t, p1, 128)
	c2 := convertTemp(t, p2, 128)

	var key string
	for gi, k := range set.Groups {
		if set.GroupDists[0][gi] > 0.05 && set.GroupDists[1][gi] > 0.05 {
			key = string(k)
			break
		}
	}
	if key == "" {
		t.Skip("no shared group in this draw")
	}
	run := func(src1, src2 string, extra ...string) string {
		out := filepath.Join(t.TempDir(), "out.csv")
		args := []string{"-schema", popSchema, "-need", key + ":10", "-out", out, "-seed", "3"}
		args = append(args, extra...)
		if err := cmdTailor(append(args, src1, src2)); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := run(p1, p2)
	if got := run(c1, c2, "-workers", "4"); got != want {
		t.Fatalf("column-file tailor diverged:\n%s\nwant:\n%s", got, want)
	}
	if got := run(p1, p2, "-partition", "64"); got != want {
		t.Fatalf("-partition tailor diverged:\n%s\nwant:\n%s", got, want)
	}
}
