// Command redi is the REDI command-line tool: profile, label, audit, and
// tailor datasets from CSV or column files.
//
// Usage:
//
//	redi profile  -schema <spec> <file.csv>
//	redi label    -schema <spec> <file.csv>
//	redi audit    -schema <spec> -sensitive a,b -threshold 25 -maxnull 0.05 <file.csv|file.col>
//	redi tailor   -schema <spec> -sensitive a,b -need "k=v;k=v:COUNT,..." -out out.csv <src1.csv|src1.col> ...
//	redi sample   -schema <spec> -n 100 -seed 1 <file.csv>
//	redi query    -schema <spec> -e "race = 'black' and age between 20 and 40" [-count|-select] <file.csv|file.col>
//	redi convert  -schema <spec> -out <file.col> [-partrows N] <file.csv>
//	redi serve    -schema <spec> -addr localhost:8080 [-replay log.jsonl] <file.csv>
//
// A schema spec is a comma-separated list of name:kind[:role] entries,
// e.g. "id:cat:id,race:cat:sensitive,age:num,label:cat:target".
//
// audit, tailor, and query detect column files (written by convert) by
// their magic and run partition-at-a-time over mapped pages instead of
// loading rows; -partition N forces the same out-of-core execution path
// onto a CSV input by viewing it in N-row partitions. Results are
// bit-identical across all of these modes and any -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"redi/internal/colfile"
	"redi/internal/core"
	"redi/internal/dataset"
	"redi/internal/expr"
	"redi/internal/obs"
	"redi/internal/profile"
	"redi/internal/rng"
	"redi/internal/trace"
)

// startTrace opens a root span when -trace was given a path. The
// returned finish func ends the span and writes the whole tree as
// Chrome Trace Event JSON (loadable in Perfetto / chrome://tracing)
// to that path; with no path both the span and finish are no-ops.
func startTrace(path, name string) (*trace.Span, func() error) {
	if path == "" {
		return nil, func() error { return nil }
	}
	sp := trace.New(name)
	return sp, func() error {
		sp.End()
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, sp, 1); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// writeObsReport emits the observability report requested by the shared
// -obs/-obs-json flags. The human-readable report goes to stderr because
// audit and tailor use stdout for their primary output (tables, CSV).
func writeObsReport(reg *obs.Registry, show bool, jsonPath string) error {
	if reg == nil {
		return nil
	}
	if show {
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "label":
		err = cmdLabel(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "tailor":
		err = cmdTailor(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "drift":
		err = cmdDrift(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "redi: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "redi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `redi <command> [flags] <files>

commands:
  profile   per-column statistics of a CSV dataset
  label     nutritional label (JSON) of a CSV dataset
  audit     responsible-data audit (coverage + completeness)
  tailor    integrate multiple CSV sources to meet group counts
  sample    uniform random sample of a CSV dataset
  drift     distribution drift between a baseline and a candidate CSV
  query     filter a dataset with a compiled predicate expression
  convert   stream a CSV into a page-aligned column file
  serve     hold a dataset resident and serve the integration API over HTTP

run "redi <command> -h" for flags; every command needs -schema
  name:kind[:role],...   kind: cat|num   role: feature|sensitive|target|id

audit, tailor, and query also accept column files written by convert
(detected by magic; -schema is then taken from the file) and execute
partition-at-a-time over mapped pages.`)
}

// parseSchema parses "name:kind[:role],..." into a schema.
func parseSchema(spec string) (*dataset.Schema, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing -schema")
	}
	var attrs []dataset.Attribute
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("bad schema entry %q", part)
		}
		a := dataset.Attribute{Name: fields[0]}
		switch fields[1] {
		case "cat":
			a.Kind = dataset.Categorical
		case "num":
			a.Kind = dataset.Numeric
		default:
			return nil, fmt.Errorf("bad kind %q in %q (want cat|num)", fields[1], part)
		}
		if len(fields) == 3 {
			switch fields[2] {
			case "feature":
				a.Role = dataset.Feature
			case "sensitive":
				a.Role = dataset.Sensitive
			case "target":
				a.Role = dataset.Target
			case "id":
				a.Role = dataset.ID
			default:
				return nil, fmt.Errorf("bad role %q in %q", fields[2], part)
			}
		}
		attrs = append(attrs, a)
	}
	return dataset.NewSchema(attrs...), nil
}

func loadCSV(path string, schema *dataset.Schema) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, schema)
}

// input is one dataset argument resolved to a backend: exactly one of d
// (in-memory rows) and pd (partition-at-a-time view) is set. cf is non-nil
// when pd is file-backed and must be closed after use.
type input struct {
	d  *dataset.Dataset
	pd *dataset.Partitioned
	cf *colfile.File
}

func (in *input) close() {
	if in.cf != nil {
		in.cf.Close()
	}
}

func (in *input) schema() *dataset.Schema {
	if in.pd != nil {
		return in.pd.Schema()
	}
	return in.d.Schema()
}

// loadInput opens a dataset argument. Column files (detected by magic)
// always become partitioned views over their own embedded schema — the
// schema spec is not consulted — and map pages instead of loading rows.
// CSVs load against the spec'd schema; partRows > 0 views the loaded rows
// in partRows-row partitions, forcing the out-of-core execution path.
func loadInput(path string, schemaSpec string, partRows int, noMmap bool) (*input, error) {
	if colfile.Sniff(path) {
		cf, err := colfile.Open(path, colfile.OpenOptions{DisableMmap: noMmap})
		if err != nil {
			return nil, err
		}
		return &input{pd: dataset.NewPartitioned(cf), cf: cf}, nil
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return nil, err
	}
	d, err := loadCSV(path, schema)
	if err != nil {
		return nil, err
	}
	if partRows > 0 {
		return &input{pd: d.Partitions(partRows)}, nil
	}
	return &input{d: d}, nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	partRows := fs.Int("partrows", 0, "rows per partition (0 = 65536; must be a positive multiple of 64)")
	outPath := fs.String("out", "", "output column file path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("convert needs exactly one CSV file")
	}
	if *outPath == "" {
		return fmt.Errorf("missing -out")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := colfile.ConvertCSV(f, schema, *outPath, colfile.WriterOptions{PartRows: *partRows}); err != nil {
		return err
	}
	// Reopen for the summary: proves the file round-trips before the tool
	// reports success.
	cf, err := colfile.Open(*outPath, colfile.OpenOptions{})
	if err != nil {
		return err
	}
	defer cf.Close()
	fmt.Fprintf(os.Stderr, "converted %d rows into %d partitions of %d (%s)\n",
		cf.NumRows(), cf.NumPartitions(), cf.PartRows(), *outPath)
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("profile needs exactly one CSV file")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	d, err := loadCSV(fs.Arg(0), schema)
	if err != nil {
		return err
	}
	fmt.Print(profile.FormatProfile(profile.Profile(d)))
	return nil
}

func cmdLabel(args []string) error {
	fs := flag.NewFlagSet("label", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	threshold := fs.Int("threshold", 0, "coverage threshold (0 = auto)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("label needs exactly one CSV file")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	d, err := loadCSV(fs.Arg(0), schema)
	if err != nil {
		return err
	}
	l := profile.BuildLabel(d, profile.LabelConfig{CoverageThreshold: *threshold})
	b, err := l.JSON()
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	sensitive := fs.String("sensitive", "", "comma-separated sensitive attributes (default: schema roles)")
	threshold := fs.Int("threshold", 10, "coverage threshold")
	maxNull := fs.Float64("maxnull", 0.05, "maximum tolerated null rate")
	partition := fs.Int("partition", 0, "view a CSV input in N-row partitions (out-of-core path; multiple of 64)")
	workers := fs.Int("workers", 0, "worker count for partition-parallel stages (0 = serial)")
	noMmap := fs.Bool("no-mmap", false, "use the read-at pager instead of mmap for column files")
	obsFlag := fs.Bool("obs", false, "print the observability report to stderr after the audit")
	obsJSON := fs.String("obs-json", "", "write the observability report as JSON to this path")
	tracePath := fs.String("trace", "", "write a Chrome Trace Event JSON of this run to the given path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("audit needs exactly one input file")
	}
	in, err := loadInput(fs.Arg(0), *schemaSpec, *partition, *noMmap)
	if err != nil {
		return err
	}
	defer in.close()
	sens := in.schema().ByRole(dataset.Sensitive)
	if *sensitive != "" {
		sens = strings.Split(*sensitive, ",")
	}
	if len(sens) == 0 {
		return fmt.Errorf("no sensitive attributes (set -sensitive or schema roles)")
	}
	var reg *obs.Registry
	if *obsFlag || *obsJSON != "" {
		// Audit takes no registry parameter; the process-wide registry
		// catches its counters (and the coverage walk's, below it).
		reg = obs.NewRegistry()
		obs.Enable(reg)
	}
	reqs := []core.Requirement{
		core.CoverageRequirement{Attrs: sens, Threshold: *threshold},
		core.CompletenessRequirement{Sensitive: sens, MaxNullRate: *maxNull},
	}
	sp, finishTrace := startTrace(*tracePath, "audit")
	var rep *core.AuditReport
	if in.pd != nil {
		rep = core.AuditPartitionedTraced(in.pd, reqs, *workers, sp)
	} else {
		rep = core.AuditTraced(in.d, reqs, sp)
	}
	if err := finishTrace(); err != nil {
		return err
	}
	fmt.Print(rep.String())
	if err := writeObsReport(reg, *obsFlag, *obsJSON); err != nil {
		return err
	}
	if !rep.Satisfied() {
		os.Exit(1)
	}
	return nil
}

// parseNeed parses "race=black;sex=F:100,race=white;sex=M:50".
func parseNeed(spec string) (map[dataset.GroupKey]int, error) {
	out := map[dataset.GroupKey]int{}
	if spec == "" {
		return nil, fmt.Errorf("missing -need")
	}
	for _, part := range strings.Split(spec, ",") {
		i := strings.LastIndex(part, ":")
		if i < 0 {
			return nil, fmt.Errorf("bad need entry %q (want key:count)", part)
		}
		n, err := strconv.Atoi(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("bad count in %q: %v", part, err)
		}
		out[dataset.GroupKey(part[:i])] = n
	}
	return out, nil
}

func cmdTailor(args []string) error {
	fs := flag.NewFlagSet("tailor", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	sensitive := fs.String("sensitive", "", "comma-separated sensitive attributes (default: schema roles)")
	needSpec := fs.String("need", "", "group count requirements, e.g. race=b;sex=F:100,...")
	outPath := fs.String("out", "", "output CSV path (default stdout)")
	seed := fs.Uint64("seed", 1, "random seed")
	known := fs.Bool("known", true, "use known source distributions (RatioColl); false = UCB")
	partition := fs.Int("partition", 0, "view CSV sources in N-row partitions (out-of-core path; multiple of 64)")
	workers := fs.Int("workers", 0, "worker count for partition-parallel stages (0 = serial)")
	noMmap := fs.Bool("no-mmap", false, "use the read-at pager instead of mmap for column files")
	obsFlag := fs.Bool("obs", false, "print the observability report to stderr after the run")
	obsJSON := fs.String("obs-json", "", "write the observability report as JSON to this path")
	tracePath := fs.String("trace", "", "write a Chrome Trace Event JSON of this run to the given path")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("tailor needs at least one source file")
	}
	need, err := parseNeed(*needSpec)
	if err != nil {
		return err
	}
	// In-memory and partitioned sources coexist in one pipeline; the
	// pipeline orders partitioned sources after in-memory ones, so costs
	// and per-source stats follow that order, not the argument order.
	var sources []*dataset.Dataset
	var partSources []*dataset.Partitioned
	for _, path := range fs.Args() {
		in, err := loadInput(path, *schemaSpec, *partition, *noMmap)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		defer in.close()
		if in.pd != nil {
			partSources = append(partSources, in.pd)
		} else {
			sources = append(sources, in.d)
		}
	}
	var schema *dataset.Schema
	if len(sources) > 0 {
		schema = sources[0].Schema()
	} else {
		schema = partSources[0].Schema()
	}
	sens := schema.ByRole(dataset.Sensitive)
	if *sensitive != "" {
		sens = strings.Split(*sensitive, ",")
	}
	var reg *obs.Registry
	if *obsFlag || *obsJSON != "" {
		reg = obs.NewRegistry()
	}
	sp, finishTrace := startTrace(*tracePath, "tailor")
	p := &core.Pipeline{
		Sources: sources, PartitionedSources: partSources, Workers: *workers,
		Sensitive: sens, KnownDistributions: *known, Obs: reg, Trace: sp,
	}
	res, err := p.Run(need, nil, rng.New(*seed))
	if err != nil {
		return err
	}
	if err := finishTrace(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tailored %d rows in %d draws, cost %.2f (strategy %s)\n",
		res.Data.NumRows(), res.Tailor.Draws, res.Tailor.TotalCost, res.Tailor.Strategy)
	if err := writeObsReport(reg, *obsFlag, *obsJSON); err != nil {
		return err
	}
	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return res.Data.WriteCSV(w)
}

func cmdDrift(args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	bins := fs.Int("bins", 10, "histogram bins for numeric attributes")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("drift needs exactly two CSV files: baseline candidate")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	baseline, err := loadCSV(fs.Arg(0), schema)
	if err != nil {
		return err
	}
	candidate, err := loadCSV(fs.Arg(1), schema)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %10s %8s %10s %10s\n", "attribute", "PSI", "TV", "W1", "level")
	for _, d := range profile.Drift(baseline, candidate, *bins) {
		fmt.Printf("%-14s %10.4f %8.4f %10.4f %10s\n", d.Attr, d.PSI, d.TV, d.W1, d.DriftLevel())
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	exprSrc := fs.String("e", "", "predicate expression, e.g. \"race = 'black' and age between 20 and 40\"")
	doCount := fs.Bool("count", false, "print only the number of matching rows (default)")
	doSelect := fs.Bool("select", false, "write the matching rows as CSV to stdout")
	explain := fs.Bool("explain", false, "print the parsed AST and disassembled bytecode to stderr")
	partition := fs.Int("partition", 0, "view a CSV input in N-row partitions (out-of-core path; multiple of 64)")
	workers := fs.Int("workers", 0, "worker count for partition-parallel stages (0 = serial)")
	noMmap := fs.Bool("no-mmap", false, "use the read-at pager instead of mmap for column files")
	obsFlag := fs.Bool("obs", false, "print the observability report to stderr after the query")
	obsJSON := fs.String("obs-json", "", "write the observability report as JSON to this path")
	tracePath := fs.String("trace", "", "write a Chrome Trace Event JSON of this run to the given path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query needs exactly one input file")
	}
	if *exprSrc == "" {
		return fmt.Errorf("missing -e expression")
	}
	if *doCount && *doSelect {
		return fmt.Errorf("-count and -select are mutually exclusive")
	}
	in, err := loadInput(fs.Arg(0), *schemaSpec, *partition, *noMmap)
	if err != nil {
		return err
	}
	defer in.close()
	var reg *obs.Registry
	if *obsFlag || *obsJSON != "" {
		reg = obs.NewRegistry()
		obs.Enable(reg)
	}
	sp, finishTrace := startTrace(*tracePath, "query")
	if in.pd != nil {
		pp, err := expr.CompilePartitioned(*exprSrc, in.pd)
		if err != nil {
			return err
		}
		if *explain {
			n, _ := expr.Parse(*exprSrc) // already compiled, cannot fail
			fmt.Fprintln(os.Stderr, "ast:", n.String())
			fmt.Fprint(os.Stderr, pp.Program().Disassemble())
		}
		if *doSelect {
			// Materialize only the matching rows: each touched partition's
			// pages are fetched once by AppendRowsTo.
			out := dataset.New(in.pd.Schema())
			if err := in.pd.AppendRowsTo(out, pp.SelectIndicesTraced(*workers, sp)); err != nil {
				return err
			}
			if err := out.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			fmt.Println(pp.CountTraced(*workers, sp))
		}
		if err := finishTrace(); err != nil {
			return err
		}
		return writeObsReport(reg, *obsFlag, *obsJSON)
	}
	cp, err := expr.Compile(*exprSrc, in.d)
	if err != nil {
		return err
	}
	if *explain {
		n, _ := expr.Parse(*exprSrc) // already compiled, cannot fail
		fmt.Fprintln(os.Stderr, "ast:", n.String())
		fmt.Fprint(os.Stderr, cp.Disassemble())
	}
	if *doSelect {
		if err := cp.SelectTraced(sp).WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Println(cp.CountFastTraced(sp))
	}
	if err := finishTrace(); err != nil {
		return err
	}
	return writeObsReport(reg, *obsFlag, *obsJSON)
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	schemaSpec := fs.String("schema", "", "schema spec")
	n := fs.Int("n", 10, "sample size")
	seed := fs.Uint64("seed", 1, "random seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("sample needs exactly one CSV file")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	d, err := loadCSV(fs.Arg(0), schema)
	if err != nil {
		return err
	}
	return d.SampleRows(rng.New(*seed), *n).WriteCSV(os.Stdout)
}
