// Joinsampling: online aggregation over a join without materializing it.
// Two tables — patients (zip, cost-of-care) and neighborhoods (zip,
// income) — are joined on zip code with heavily skewed fan-out. The example
// estimates AVG over the join with ripple join, wander join, and the exact
// uniform sampler, and compares each estimate (with its confidence
// interval) against the exact answer.
package main

import (
	"fmt"
	"log"

	"redi/internal/joinsample"
	"redi/internal/rng"
	"redi/internal/stats"
)

func main() {
	r := rng.New(11)

	// Patients: one row per patient, keyed by zip. Zipf skew: a few
	// dense urban zips hold most patients.
	zips := 80
	weights := rng.ZipfWeights(zips, 1.3)
	zipOf := rng.NewCategorical(weights)
	var patients []joinsample.Tuple
	for i := 0; i < 5000; i++ {
		z := zipOf.Draw(r)
		patients = append(patients, joinsample.Tuple{
			Left:  int64(z),
			Value: 800 + 30*float64(z) + r.Normal(0, 150), // cost of care
		})
	}
	// Neighborhoods: one row per zip.
	var hoods []joinsample.Tuple
	for z := 0; z < zips; z++ {
		hoods = append(hoods, joinsample.Tuple{
			Right: int64(z),
			Value: 40000 - 300*float64(z) + r.Normal(0, 2000), // income
		})
	}
	R := joinsample.NewRelation("neighborhoods", hoods)
	S := joinsample.NewRelation("patients", patients)
	chain, err := joinsample.NewChain(R, S)
	if err != nil {
		log.Fatal(err)
	}
	truthCount, truthSum := chain.ExactAggregates()
	truthAvg := truthSum / truthCount
	fmt.Printf("join: %d neighborhoods x %d patients -> %.0f results\n",
		R.Len(), S.Len(), chain.JoinCount())
	fmt.Printf("exact AVG(income + cost) over join: %.2f\n\n", truthAvg)

	const budget = 2000 // tuples/walks consumed per estimator

	// Ripple join.
	rp, err := joinsample.NewRipple(R, S, rng.New(12))
	if err != nil {
		log.Fatal(err)
	}
	for rp.Steps() < budget && !rp.Done() {
		rp.Step()
	}
	avg, ci := rp.AvgEstimate(0.95)
	fmt.Printf("ripple join   (%4d tuples):  AVG %.2f ± %.2f  (rel.err %.4f)\n",
		rp.Steps(), avg, ci, stats.RelativeError(avg, truthAvg))

	// Wander join.
	w := joinsample.NewWanderEstimator(chain)
	wr := rng.New(13)
	for i := 0; i < budget; i++ {
		w.Step(wr)
	}
	fmt.Printf("wander join   (%4.0f walks):   AVG %.2f          (rel.err %.4f)\n",
		w.Steps(), w.Avg(), stats.RelativeError(w.Avg(), truthAvg))

	// Exact uniform sampler.
	u := joinsample.NewUniformEstimator(chain)
	ur := rng.New(14)
	for i := 0; i < budget; i++ {
		u.Step(ur)
	}
	uavg, uci := u.Avg(0.95)
	fmt.Printf("uniform       (%4d samples): AVG %.2f ± %.2f  (rel.err %.4f)\n",
		budget, uavg, uci, stats.RelativeError(uavg, truthAvg))

	// Why naive sampling is dangerous: estimate the average with the
	// biased walk and no correction.
	var naive stats.Estimator
	nr := rng.New(15)
	for i := 0; i < budget; i++ {
		if path, ok := chain.NaiveSample(nr); ok {
			naive.Add(chain.PathValue(path))
		}
	}
	fmt.Printf("naive walk    (%4d samples): AVG %.2f          (rel.err %.4f)  <- biased\n",
		budget, naive.Mean(), stats.RelativeError(naive.Mean(), truthAvg))
}
