// Cleanaudit: fairness auditing of data cleaning (tutorial §3.3, §5). The
// example injects group-correlated missingness (MAR) into a skewed
// population, repairs it with several imputers, and prints each imputer's
// overall error and its imputation accuracy parity difference across
// demographic groups — then shows why "drop rows with nulls" silently
// erodes minority coverage.
package main

import (
	"fmt"
	"log"

	"redi/internal/cleaning"
	"redi/internal/rng"
	"redi/internal/synth"
)

func main() {
	cfg := synth.DefaultPopulation(8000)
	cfg.GroupEffect = 2
	pop := synth.Generate(cfg, rng.New(5))
	sens := []string{"race", "sex"}

	// MAR missingness: the f0 measurement is missing 3x more often for
	// race=black patients (e.g. a test less often ordered for them).
	masked := synth.InjectMissing(pop.Data, synth.MissingConfig{
		Attr: "f0", Rate: 0.25, Mech: synth.MAR,
		CondAttr: "race", CondValue: "black",
	}, rng.New(6))

	fmt.Println("imputation audit on f0 (25% MAR missingness, boosted for race=black):")
	fmt.Printf("  %-12s %8s %14s\n", "imputer", "RMSE", "parity-diff")
	imputers := []cleaning.Imputer{
		cleaning.MeanImputer{},
		cleaning.MedianImputer{},
		cleaning.GroupMeanImputer{Sensitive: sens},
		cleaning.HotDeckImputer{Sensitive: sens, R: rng.New(7)},
		cleaning.KNNImputer{K: 5, Features: []string{"f1", "f2", "f3"}},
	}
	for _, imp := range imputers {
		repaired, err := imp.Impute(masked, "f0")
		if err != nil {
			log.Fatal(err)
		}
		audit, err := cleaning.AuditImputation(imp.Name(), pop.Data, masked, repaired, "f0", sens)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.3f %14.3f\n", audit.Imputer, audit.RMSE, audit.ParityDiff)
	}

	// The deletion repair: who loses coverage?
	dropped, err := cleaning.DropRows{}.Impute(masked, "f0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndropping null rows keeps %d of %d rows; per-group coverage loss:\n",
		dropped.NumRows(), masked.NumRows())
	for k, loss := range cleaning.CoverageLoss(masked, dropped, []string{"race"}) {
		fmt.Printf("  %-16s %.1f%%\n", k, 100*loss)
	}
}
