// Interventions: auditing a trained model by demographic slice and
// comparing fairness interventions under the FairPrep protocol. A lending
// model is trained on skewed data; the slice finder pinpoints exactly which
// intersectional subpopulations it fails; the study then quantifies what
// each downstream intervention buys and costs — the §2.3 trade-off in
// numbers.
package main

import (
	"fmt"
	"log"

	"redi/internal/acquisition"
	"redi/internal/fairness"
	"redi/internal/rng"
	"redi/internal/synth"
)

func main() {
	cfg := synth.DefaultPopulation(6000)
	cfg.GroupEffect = 1.3
	pop := synth.Generate(cfg, rng.New(3))
	prob, err := fairness.InferProblem(pop.Data)
	if err != nil {
		log.Fatal(err)
	}
	trainD, testD := pop.Data.Split(rng.New(4), 0.6)
	train, err := fairness.BuildDesign(trainD, prob)
	if err != nil {
		log.Fatal(err)
	}
	test, err := fairness.BuildDesign(testD, prob)
	if err != nil {
		log.Fatal(err)
	}
	means, scales := train.Standardize()
	test.ApplyStandardize(means, scales)

	m, err := fairness.TrainLogistic(train.X, train.Y, nil, fairness.LogisticConfig{}, rng.New(5))
	if err != nil {
		log.Fatal(err)
	}
	rep := fairness.Evaluate(m, test)
	fmt.Printf("model: accuracy %.3f, AUC %.3f, DP diff %.3f, accuracy gap %.3f\n",
		rep.Accuracy, fairness.AUC(m, test), rep.DemographicParityDiff, rep.AccuracyGap)

	// Which slices does the model actually fail?
	slices, err := acquisition.FindProblemSlices(m, test, testD, acquisition.SliceFinderConfig{
		Attrs: []string{"race", "sex"},
		TopK:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nproblem slices (loss vs overall):")
	for _, s := range slices {
		fmt.Printf("  %-28s n=%4d loss %.3f (gap %+.3f)\n", s.Description, s.N, s.Loss, s.Gap)
	}

	// What can downstream interventions do about it?
	data := func(seed uint64) (tr, val, te *fairness.Design, err error) {
		p := synth.Generate(cfg, rng.New(seed))
		trD, rest := p.Data.Split(rng.New(seed+1), 0.6)
		valD, teD := rest.Split(rng.New(seed+2), 0.5)
		if tr, err = fairness.BuildDesign(trD, prob); err != nil {
			return
		}
		if val, err = fairness.BuildDesign(valD, prob); err != nil {
			return
		}
		if te, err = fairness.BuildDesign(teD, prob); err != nil {
			return
		}
		mm, ss := tr.Standardize()
		val.ApplyStandardize(mm, ss)
		te.ApplyStandardize(mm, ss)
		return tr, val, te, nil
	}
	lcfg := fairness.LogisticConfig{Epochs: 25}
	rows, err := fairness.RunStudy(fairness.StudyConfig{
		Seeds: []uint64{11, 22, 33},
		Data:  data,
	}, []fairness.Intervention{
		fairness.Baseline(lcfg),
		fairness.ReweighIntervention(lcfg),
		fairness.ParityPostProcess(lcfg, 0.5),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintervention study (mean±std over 3 seeds):")
	fmt.Printf("  %-18s %14s %14s %14s\n", "intervention", "accuracy", "DP diff", "acc gap")
	for _, r := range rows {
		fmt.Printf("  %-18s %7.3f±%.3f %7.3f±%.3f %7.3f±%.3f\n",
			r.Intervention,
			r.Accuracy.Mean, r.Accuracy.Std,
			r.DPDiff.Mean, r.DPDiff.Std,
			r.AccuracyGap.Mean, r.AccuracyGap.Std)
	}
	fmt.Println("\nthe data-side alternative: see examples/healthcare, where tailored")
	fmt.Println("collection lifts worst-group accuracy without sacrificing the rest.")
}
