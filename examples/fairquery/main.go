// Fairquery: fairness-aware range queries (tutorial §5). A scholarship
// committee selects students with "score BETWEEN 70 AND 100"; because one
// group's scores are systematically depressed, the result is demographically
// one-sided. The example rewrites the range minimally until the group-count
// disparity is within bounds, and separately relaxes a query until every
// group reaches a required count (coverage-based rewriting).
package main

import (
	"fmt"
	"log"

	"redi/internal/dataset"
	"redi/internal/rangequery"
	"redi/internal/rng"
)

func main() {
	r := rng.New(31)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "score", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for i := 0; i < 800; i++ {
		grp, mean := "a", 72.0
		if i%3 == 0 {
			grp, mean = "b", 58.0
		}
		d.MustAppendRow(dataset.Num(r.Normal(mean, 9)), dataset.Cat(grp))
	}
	ix, err := rangequery.NewIndex(d, "score", []string{"grp"})
	if err != nil {
		log.Fatal(err)
	}

	orig := ix.Query(70, 100)
	fmt.Println("original query: score BETWEEN 70 AND 100")
	printResult(ix, orig)

	fmt.Println("\nfairest similar ranges under tightening disparity bounds:")
	for _, eps := range []int{50, 20, 5, 0} {
		res, err := ix.FairestSimilarRange(70, 100, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eps=%3d -> score BETWEEN %.1f AND %.1f  similarity %.3f\n",
			eps, res.Lo, res.Hi, res.Similarity)
		printResult(ix, res)
	}

	fmt.Println("\ncoverage-based rewriting: require at least 60 rows per group")
	res, err := ix.CoverageRelax(70, 100, []int{60, 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  relaxed to score BETWEEN %.1f AND %.1f (similarity %.3f)\n",
		res.Lo, res.Hi, res.Similarity)
	printResult(ix, res)
}

func printResult(ix *rangequery.Index, res rangequery.Result) {
	for gi, k := range ix.Groups {
		fmt.Printf("    %-8s %4d rows\n", k, res.Counts[gi])
	}
	fmt.Printf("    disparity %d, result size %d\n", res.Disparity, res.Size)
}
