// Healthcare: the paper's Example 1 end to end. An AI company trains a
// breast-cancer early-detection model on in-house data in which minority
// patients are under-represented (the historical-redlining skew). The model
// is then retrained on data tailored from multiple institutional sources
// (the CAPriCORN setting). The example prints overall and per-group test
// accuracy of both models, showing tailoring closing the minority gap.
package main

import (
	"fmt"
	"log"

	"redi/internal/core"
	"redi/internal/dataset"
	"redi/internal/fairness"
	"redi/internal/rng"
	"redi/internal/synth"
)

func main() {
	// The "true" patient population, with group-dependent features and
	// outcomes.
	popCfg := synth.DefaultPopulation(0)
	popCfg.GroupEffect = 1.5

	// Five institutional sources, each skewed in its own way.
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        popCfg,
		NumSources:        5,
		RowsPerSource:     3000,
		SkewConcentration: 1.5,
		// Some institutions are cheaper to query than others.
		Costs: []float64{1, 1, 2, 3, 5},
		// Held-out test patients from the same population.
		HoldoutRows: 5000,
	}, rng.New(1))

	prob, err := fairness.InferProblem(set.Holdout)
	if err != nil {
		log.Fatal(err)
	}
	// Clinical models routinely include demographics; one-hot encoding
	// the sensitive attributes lets the model fit per-group baselines —
	// exactly the parameters that under-representation starves.
	prob.Encoder = fairness.NewOneHotEncoder(set.Holdout, prob.Sensitive)
	test, err := fairness.BuildDesign(set.Holdout, prob)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, train *dataset.Dataset, cost float64) {
		d, err := fairness.BuildDesign(train, prob)
		if err != nil {
			log.Fatal(err)
		}
		m, err := fairness.TrainLogistic(d.X, d.Y, nil, fairness.LogisticConfig{}, rng.New(3))
		if err != nil {
			log.Fatal(err)
		}
		rep := fairness.Evaluate(m, test)
		fmt.Printf("\n%s (%d rows, collection cost %.0f):\n", name, train.NumRows(), cost)
		fmt.Printf("  overall accuracy %.3f, demographic parity diff %.3f\n",
			rep.Accuracy, rep.DemographicParityDiff)
		for _, g := range rep.Groups {
			if g.N > 0 {
				fmt.Printf("  %-28s n=%4d accuracy %.3f\n", g.Key, g.N, g.Accuracy)
			}
		}
	}

	// Scenario A: in-house data only — the first institution, which is
	// majority-dominated.
	inHouse := set.Sources[0].Head(1500)
	report("in-house model", inHouse, float64(inHouse.NumRows()))

	// Scenario B: responsibly integrated data — equal representation of
	// every group that exists in some source, collected at minimum cost
	// by distribution tailoring.
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				need[k] = 180
				break
			}
		}
	}
	pipeline := &core.Pipeline{
		Sources:            set.Sources,
		Costs:              set.Costs,
		Sensitive:          set.SensitiveNames,
		KnownDistributions: true,
	}
	out, err := pipeline.Run(need, []core.Requirement{
		core.CountRequirement{Attrs: set.SensitiveNames, Min: need},
	}, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	if !out.Audit.Satisfied() {
		log.Fatalf("audit failed:\n%s", out.Audit)
	}
	report("tailored model", out.Data, out.Tailor.TotalCost)

	fmt.Printf("\ntailoring: %d draws across %d sources (per-source %v)\n",
		out.Tailor.Draws, len(set.Sources), out.Tailor.DrawsBySrc)
}
