// Quickstart: the smallest end-to-end REDI run. It generates three skewed
// synthetic data sources, tailors a dataset that meets per-group count
// requirements at minimum cost, audits the result against responsible-data
// requirements, and prints its nutritional label summary.
package main

import (
	"fmt"
	"log"

	"redi/internal/core"
	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func main() {
	r := rng.New(42)

	// Three sources over the same schema, each with its own demographic
	// skew — the multi-institution setting of the paper's Example 1.
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        3,
		RowsPerSource:     1500,
		SkewConcentration: 2,
	}, r)
	fmt.Println("sources:")
	for i, s := range set.Sources {
		g := s.GroupBy("race")
		fmt.Printf("  source %d: %d rows, race distribution %v -> %v\n",
			i, s.NumRows(), g.Keys(), compact(g.Distribution()))
	}

	// Requirement: 40 rows from every race/sex group that exists in at
	// least one source.
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				need[k] = 40
				break
			}
		}
	}

	reqs := []core.Requirement{
		core.CountRequirement{Attrs: set.SensitiveNames, Min: need},
		core.CoverageRequirement{Attrs: set.SensitiveNames, Threshold: 20},
		core.CompletenessRequirement{Sensitive: set.SensitiveNames, MaxNullRate: 0.01},
	}
	pipeline := &core.Pipeline{
		Sources:            set.Sources,
		Sensitive:          set.SensitiveNames,
		KnownDistributions: true,
	}
	out, err := pipeline.Run(need, reqs, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntailored %d rows with %d draws at cost %.0f (%s)\n",
		out.Data.NumRows(), out.Tailor.Draws, out.Tailor.TotalCost, out.Tailor.Strategy)
	fmt.Println("\nprovenance:")
	fmt.Print(out.Provenance.String())
	fmt.Println("\naudit:")
	fmt.Print(out.Audit.String())
	fmt.Println("label highlights:")
	fmt.Printf("  groups: %d, uncovered patterns: %d\n",
		len(out.Label.GroupCounts), len(out.Label.UncoveredPatterns))
	for _, b := range out.Label.AttributeBias {
		fmt.Printf("  feature %-4s sensitive-assoc %.3f, target-corr %.3f\n",
			b.Attr, b.SensitiveAssoc, b.TargetCorr)
	}
}

func compact(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.2f", x)
	}
	return out
}
