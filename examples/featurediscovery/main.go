// Featurediscovery: unbiased feature discovery over a data lake (tutorial
// §3.1 and §5). A query table holds patient ids, a sensitive attribute, and
// a numeric health outcome; the repository holds joinable tables whose
// numeric columns are candidate model features. The example first finds
// joinable tables through the LSH-ensemble domain index, then ranks
// candidate features by target correlation penalized by association with
// the sensitive attribute — surfacing informative features while demoting
// demographic proxies.
package main

import (
	"fmt"
	"log"

	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/rng"
)

func main() {
	r := rng.New(21)

	// Query table: patient id, neighborhood group, outcome severity.
	q := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "patient", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "severity", Kind: dataset.Numeric, Role: dataset.Target},
	))
	// Candidate tables in the lake.
	labs := newTable("patient", "lab_score")     // informative, unbiased
	zipcode := newTable("patient", "zip_income") // demographic proxy
	noise := newTable("patient", "shoe_size")    // uninformative
	stale := newTable("subject", "lab_score")    // wrong key domain

	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("p%05d", i)
		grp, shift := "east", 0.0
		if i%4 == 0 {
			grp, shift = "west", 2.5
		}
		signal := r.Normal(0, 1)
		q.MustAppendRow(dataset.Cat(id), dataset.Cat(grp),
			dataset.Num(signal+0.6*shift+r.Normal(0, 0.4)))
		labs.MustAppendRow(dataset.Cat(id), dataset.Num(signal+r.Normal(0, 0.4)))
		zipcode.MustAppendRow(dataset.Cat(id), dataset.Num(shift+r.Normal(0, 0.3)))
		noise.MustAppendRow(dataset.Cat(id), dataset.Num(r.Normal(0, 1)))
		stale.MustAppendRow(dataset.Cat(fmt.Sprintf("s%05d", i)), dataset.Num(r.Normal(0, 1)))
	}

	repo := discovery.NewRepository()
	for name, tbl := range map[string]*dataset.Dataset{
		"labs": labs, "zipcode": zipcode, "noise": noise, "stale": stale,
	} {
		if err := repo.Add(name, tbl); err != nil {
			log.Fatal(err)
		}
	}

	// Step 1: find joinable tables via the LSH ensemble.
	var refs []discovery.ColumnRef
	var domains []map[string]bool
	for _, ref := range repo.Columns() {
		refs = append(refs, ref)
		domains = append(domains, repo.Domain(ref))
	}
	ens, err := discovery.NewLSHEnsemble(128, 2)
	if err != nil {
		log.Fatal(err)
	}
	ens.Index(refs, domains)
	joinable := ens.Query(discovery.DomainOf(q, "patient"), 0.8)
	fmt.Println("joinable columns (estimated containment >= 0.8):")
	for _, m := range joinable {
		fmt.Printf("  %-18s %.3f\n", m.Ref, m.Score)
	}

	// Step 2: rank candidate features, penalizing sensitive association.
	hits, err := discovery.DiscoverFeatures(repo, discovery.FeatureQuery{
		Query:       q,
		JoinAttr:    "patient",
		TargetAttr:  "severity",
		Sensitive:   []string{"grp"},
		BiasPenalty: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked features (score = target-corr − λ·sensitive-assoc):")
	fmt.Printf("  %-22s %8s %12s %14s %8s\n", "feature", "score", "target-corr", "sens-assoc", "rows")
	for _, h := range hits {
		fmt.Printf("  %-22s %8.3f %12.3f %14.3f %8d\n",
			h.Column, h.Score, h.TargetCorr, h.SensitiveAssoc, h.Rows)
	}
	if len(hits) > 0 {
		fmt.Printf("\nrecommended feature: %s\n", hits[0].Column)
	}
}

func newTable(key, val string) *dataset.Dataset {
	return dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: key, Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: val, Kind: dataset.Numeric, Role: dataset.Feature},
	))
}
