// Datalake: organizing a data lake for navigation (tutorial §3.1) and
// answering population queries from a biased sample (tutorial §5). The
// example registers a dozen heterogeneous tables, clusters their column
// domains into a navigable tree, navigates to health-related tables by
// intent, and finally answers an AVG query over a demographically biased
// extract using post-stratified weights.
package main

import (
	"fmt"
	"log"

	"redi/internal/dataset"
	"redi/internal/debias"
	"redi/internal/discovery"
	"redi/internal/rng"
)

func main() {
	r := rng.New(8)
	repo := discovery.NewRepository()

	add := func(name, col string, vals []string) {
		d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: col, Kind: dataset.Categorical}))
		for _, v := range vals {
			d.MustAppendRow(dataset.Cat(v))
		}
		if err := repo.Add(name, d); err != nil {
			log.Fatal(err)
		}
	}
	// Three topical clusters of tables.
	add("clinic_visits", "diagnosis", []string{"diabetes", "asthma", "hypertension", "cancer"})
	add("hospital_records", "condition", []string{"diabetes", "cancer", "fracture", "asthma"})
	add("pharmacy", "treatment", []string{"insulin", "inhaler", "statin", "chemo"})
	add("bus_routes", "stop", []string{"loop", "uptown", "midway", "harbor"})
	add("train_lines", "station", []string{"loop", "uptown", "airport", "harbor"})
	add("parks", "park", []string{"lakefront", "riverside", "prairie"})
	add("census_tracts", "tract", []string{"t100", "t200", "t300", "t400"})
	add("school_zones", "zone", []string{"t100", "t200", "z9"})

	// Organize and render the lake.
	tree := discovery.Organize(repo, 0.15, 3)
	fmt.Println("data lake organization:")
	fmt.Print(discovery.RenderTree(tree, 1))

	// Navigate by intent.
	intent := map[string]bool{"diabetes": true, "cancer": true}
	path, leafs := discovery.Navigate(tree, intent)
	fmt.Printf("\nnavigating with intent {diabetes, cancer}: %d levels down\n", len(path))
	fmt.Println("reached columns:")
	for _, c := range leafs {
		fmt.Printf("  %s\n", c)
	}

	// A biased extract: suppose the clinic's patient sample over-
	// represents one neighborhood; estimate the citywide average visit
	// cost anyway.
	sample := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "tract", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "cost", Kind: dataset.Numeric, Role: dataset.Feature},
	))
	for i := 0; i < 4000; i++ {
		tract, mean := "t100", 120.0 // well-served, cheap visits, over-sampled
		switch {
		case i%8 == 0:
			tract, mean = "t200", 260
		case i%8 == 1:
			tract, mean = "t300", 310
		}
		sample.MustAppendRow(dataset.Cat(tract), dataset.Num(r.Normal(mean, 20)))
	}
	population := map[dataset.GroupKey]float64{
		"tract=t100": 0.4, "tract=t200": 0.35, "tract=t300": 0.25,
	}
	w, err := debias.PostStratify(sample, []string{"tract"}, population)
	if err != nil {
		log.Fatal(err)
	}
	truth := 0.4*120 + 0.35*260 + 0.25*310
	fmt.Printf("\ncitywide AVG(visit cost), true value %.2f:\n", truth)
	fmt.Printf("  naive sample mean:    %8.2f (skewed toward the over-sampled tract)\n",
		debias.NaiveMean(sample, "cost"))
	fmt.Printf("  post-stratified mean: %8.2f\n", debias.WeightedMean(sample, w, "cost"))
}
