// Package redi is the root of REDI, a stdlib-only Go implementation of the
// systems surveyed in "Responsible Data Integration: Next-generation
// Challenges" (Nargesian, Asudeh, Jagadish — SIGMOD 2022): distribution
// tailoring, coverage analysis, sampling over joins, dataset discovery,
// fairness-aware profiling/cleaning/querying, selective acquisition, and
// the end-to-end responsible-integration pipeline tying them together.
//
// The root package holds only the benchmark harness (bench_test.go), one
// testing.B benchmark per experiment table E1–E18. The library lives under
// internal/ (see README.md for the package map), executables under cmd/,
// and runnable scenarios under examples/.
package redi
